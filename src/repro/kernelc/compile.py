"""Vectorized kernel compiler: lower kernel IR to NumPy batch execution.

The tree-walking :class:`~repro.kernelc.codegen.KernelInterpreter` executes
one record at a time; this module compiles a kernel (original, addrgen, or
databuf form) into a generated Python function that executes an entire
``[lo, hi)`` record range per call as NumPy array operations:

* ``Assign``/``BinOp``/``UnOp`` become array expressions over per-lane
  arrays (one lane per record);
* ``If`` lowers to masked predication — vector conditions compress the
  lane set for each branch and merge assignments back with a blend, while
  Param/Const-only conditions stay plain Python ``if``;
* uniform-bound inner ``For`` loops stay Python loops over array state
  (each iteration advances all lanes at once);
* mapped ``Load``/``Store`` become fancy-indexed gathers/scatters;
* ``EmitAddress`` logs whole lane-vectors of byte offsets, and purely
  affine addrgen slices additionally collapse to a closed-form
  :class:`AffineStream` (``base + stride * arange``) that can feed
  ``PatternRecognizer``/``AdaptiveAddressTracker`` without materializing
  per-element :class:`~repro.kernelc.codegen.AddressRecord` objects.

Exactness is the contract, not a best effort: outputs, the full
:class:`~repro.kernelc.codegen.InterpStats` counters, and emitted address
streams match the interpreter bit-for-bit for every kernel the
vectorizability analysis (:func:`repro.kernelc.analysis.analyze_vectorizable`)
admits. Kernels it rejects — data-dependent ``While``/``Break``,
loop-carried locals, non-reassociable float ``AtomicAdd`` interleavings,
opaque device functions — fall back to the interpreter, which is retained
unchanged as the equivalence oracle (see ``verify --compiled``).

Known, deliberate width caveat: compiled integer lanes are int64 while the
interpreter carries width-unbounded Python ints; kernels whose intermediate
values exceed 2**63 would diverge. Every packaged app applies an explicit
modulus well below that (the paper's kernels model 32/64-bit registers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from repro.errors import BufferOverrun, VectorizationError
from repro.kernelc.analysis import (
    BUILTIN_VARS,
    VectorizationReport,
    _expr_reads,
    _is_param_uniform,
    _stmt_eval_exprs,
    analyze_vectorizable,
)
from repro.kernelc.codegen import AddressRecord, ExecutionContext, InterpStats
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Call,
    Const,
    DataBufLoad,
    EmitAddress,
    Expr,
    ExprStmt,
    For,
    If,
    Kernel,
    Load,
    Param,
    ResidentLoad,
    ResidentStore,
    Stmt,
    Store,
    UnOp,
    Var,
    WriteBufStore,
    walk_exprs,
    walk_stmts,
)


# ---------------------------------------------------------------------------
# runtime support object the generated code calls into
# ---------------------------------------------------------------------------

def _lift(values: np.ndarray) -> np.ndarray:
    """Widen gathered lanes to the interpreter's scalar domain: Python-int
    semantics map to int64 lanes, everything float to float64."""
    if values.dtype.kind in "iub":
        return values.astype(np.int64)
    return values.astype(np.float64)


class _Runtime:
    """Per-run state + polymorphic helpers for one compiled execution.

    Every helper accepts scalars (uniform values) or per-lane arrays and
    multiplies its InterpStats contribution by the *current lane count*,
    reproducing the interpreter's per-record counting exactly.
    """

    def __init__(self, ctx: ExecutionContext, lo: int, hi: int, tid: int = 0,
                 extra: Optional[dict] = None):
        self.ctx = ctx
        self.lo = int(lo)
        self.hi = int(hi)
        self.tid = tid
        self.extra = dict(extra or {})
        self.stats = InterpStats()
        self.root_lanes = np.arange(0)  # reassigned by the compiled body
        self.read_log: list = []   # (array, lanes, offsets, nbytes, dtype)
        self.write_log: list = []
        self.writebuf_log: list = []  # + values
        self.windows: dict = {}
        self._sites: list = []

    # ------------------------------------------------------ lane plumbing
    @staticmethod
    def lanes(v, n):
        return v if isinstance(v, np.ndarray) else np.full(n, v)

    @staticmethod
    def compress(v, mask):
        return v[mask] if isinstance(v, np.ndarray) else v

    def mask(self, cond, n):
        m = np.asarray(cond, dtype=bool)
        if m.ndim == 0:
            m = np.full(n, bool(m))
        return m

    @staticmethod
    def blend(mask, base, then_val, else_val):
        """Merge branch-scope assignments back into the parent lane set."""
        vals = [np.asarray(v) for v in (base, then_val, else_val)
                if v is not None]
        dt = np.result_type(*vals) if vals else np.int64
        out = np.zeros(mask.shape[0], dtype=dt)
        if base is not None:
            out[:] = base
        if then_val is not None:
            out[mask] = then_val
        if else_val is not None:
            out[~mask] = else_val
        return out

    # ------------------------------------------------------ eager logic ops
    @staticmethod
    def b_and(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.logical_and(a, b)
        return bool(a) and bool(b)

    @staticmethod
    def b_or(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.logical_or(a, b)
        return bool(a) or bool(b)

    @staticmethod
    def b_not(a):
        return np.logical_not(a) if isinstance(a, np.ndarray) else (not a)

    @staticmethod
    def b_min(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.minimum(a, b)
        return min(a, b)

    @staticmethod
    def b_max(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.maximum(a, b)
        return max(a, b)

    # ------------------------------------------------------ mapped accesses
    def gather(self, view, idx, nbytes, n):
        self.stats.n_mapped_reads += n
        self.stats.mapped_read_bytes += n * nbytes
        if isinstance(idx, np.ndarray):
            return _lift(view[idx.astype(np.int64)])
        if n == 0:
            return 0
        return view[int(idx)].item()

    def scatter(self, view, idx, val, nbytes, n):
        self.stats.n_mapped_writes += n
        self.stats.mapped_write_bytes += n * nbytes
        if n == 0:
            return
        idx = self.lanes(idx, n).astype(np.int64)
        view[idx] = val

    def writebuf(self, array, lanes, offsets, val, nbytes, dtype, n):
        self.stats.n_mapped_writes += n
        self.stats.mapped_write_bytes += n * nbytes
        if n == 0:
            return
        self.writebuf_log.append(
            (array, lanes, self.lanes(offsets, n), nbytes, dtype,
             self.lanes(val, n))
        )

    def emit(self, log, array, lanes, offsets, nbytes, dtype, n):
        if n == 0:
            return
        log.append((array, lanes, self.lanes(offsets, n), nbytes, dtype))

    # ---------------------------------------------------- resident accesses
    def res_load(self, arr, idx, n):
        self.stats.n_resident_accesses += n
        if isinstance(idx, np.ndarray):
            return _lift(arr[idx.astype(np.int64)])
        if n == 0:
            return 0
        v = arr[int(idx)]
        return v.item() if isinstance(v, np.generic) else v

    def res_store(self, arr, idx, val, n):
        self.stats.n_resident_accesses += n
        if n == 0:
            return
        if isinstance(idx, np.ndarray):
            # in-order fancy assignment: the last lane writing a slot wins,
            # matching the interpreter's per-record execution order
            arr[idx.astype(np.int64)] = val
        else:
            arr[int(idx)] = val[-1] if isinstance(val, np.ndarray) else val

    def atomic(self, arr, idx, val, n):
        self.stats.n_resident_accesses += n
        if n == 0:
            return
        idx = self.lanes(idx, n).astype(np.int64)
        if arr.dtype.kind in "iu" and (
            isinstance(val, float)
            or (isinstance(val, np.ndarray) and val.dtype.kind == "f")
        ):
            val = np.asarray(val).astype(np.int64)
        # np.add.at applies increments unbuffered in index order == lane
        # order, so even colliding slots accumulate exactly like the
        # per-record interpreter
        np.add.at(arr, idx, val)

    # --------------------------------------------------------- device calls
    def call(self, name, n, *args):
        self.stats.n_calls += n
        fn = self.ctx.device_fns[name]
        out = fn.vectorized(self.ctx, *[self.lanes(a, n) for a in args])
        return np.asarray(out)

    # -------------------------------------------------------------- databuf
    def set_sites(self, values: Iterable, n_sites: int, site_meta) -> None:
        vals = list(values)
        self._sites = []
        for k, (nbytes, dtype) in enumerate(site_meta):
            sub = np.asarray(vals[k::n_sites], dtype=dtype)
            self._sites.append(_lift(sub))

    def pop_site(self, k, nbytes, n):
        self.stats.n_mapped_reads += n
        self.stats.mapped_read_bytes += n * nbytes
        site = self._sites[k]
        if site.shape[0] != n:
            raise BufferOverrun(
                f"data buffer site {k} holds {site.shape[0]} values for "
                f"{n} lanes"
            )
        return site

    def window_load(self, array, offsets, nbytes, dtype, n):
        self.stats.n_mapped_reads += n
        self.stats.mapped_read_bytes += n * nbytes
        base, window = self.windows[array]
        if n == 0:
            return 0
        rel = self.lanes(offsets, n).astype(np.int64) - base
        if rel.size and (rel.min() < 0 or rel.max() + nbytes > window.nbytes):
            raise BufferOverrun(
                f"fallback window miss for {array!r}: offsets outside the "
                f"{window.nbytes}-byte window"
            )
        mat = window[rel[:, None] + np.arange(nbytes)]
        vals = np.ascontiguousarray(mat).view(dtype)[:, 0]
        return _lift(vals)


# ---------------------------------------------------------------------------
# run result: stats + lane-major address streams
# ---------------------------------------------------------------------------

def _stream(log, root_lanes):
    """Flatten an emit log to interpreter (record-major) order.

    Returns ``(offsets, order_meta)`` where ``order_meta`` is a list of
    event indices aligned with ``offsets``. The common case — every event
    covered the full unmasked lane set — interleaves by reshape; masked
    events fall back to a stable argsort on lane ids, which preserves
    per-lane program order.
    """
    if not log:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    n = root_lanes.shape[0]
    if all(entry[1] is root_lanes for entry in log):
        offs = np.stack([entry[2] for entry in log], axis=1).ravel()
        ev = np.tile(np.arange(len(log)), n)
        return offs.astype(np.int64), ev
    lanes_all = np.concatenate([entry[1] for entry in log])
    offs_all = np.concatenate(
        [np.asarray(entry[2], dtype=np.int64) for entry in log]
    )
    ev_all = np.concatenate(
        [np.full(entry[1].shape[0], i) for i, entry in enumerate(log)]
    )
    order = np.argsort(lanes_all, kind="stable")
    return offs_all[order], ev_all[order]


class CompiledRun:
    """Outcome of one compiled range execution."""

    def __init__(self, rt: _Runtime):
        self._rt = rt
        self.stats: InterpStats = rt.stats

    def read_offsets(self) -> np.ndarray:
        return _stream(self._rt.read_log, self._rt.root_lanes)[0]

    def write_offsets(self) -> np.ndarray:
        return _stream(self._rt.write_log, self._rt.root_lanes)[0]

    def read_records(self) -> list:
        offs, ev = _stream(self._rt.read_log, self._rt.root_lanes)
        log = self._rt.read_log
        return [
            AddressRecord(log[e][0], int(o), log[e][3], log[e][4], False)
            for o, e in zip(offs, ev)
        ]

    def write_records(self) -> list:
        offs, ev = _stream(self._rt.write_log, self._rt.root_lanes)
        log = self._rt.write_log
        return [
            AddressRecord(log[e][0], int(o), log[e][3], log[e][4], True)
            for o, e in zip(offs, ev)
        ]

    def write_queue(self) -> list:
        """Databuf-form pending writes in interpreter order:
        ``[(AddressRecord, value), ...]``."""
        log = self._rt.writebuf_log
        if not log:
            return []
        offs, ev = _stream(
            [entry[:5] for entry in log], self._rt.root_lanes
        )
        # rebuild per-entry positions to index the value arrays
        pos: dict = {}
        out = []
        for o, e in zip(offs, ev):
            p = pos.get(e, 0)
            pos[e] = p + 1
            entry = log[e]
            out.append(
                (AddressRecord(entry[0], int(o), entry[3], entry[4], True),
                 entry[5][p])
            )
        return out


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------

def _san(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _n_ops(exprs) -> int:
    return sum(
        1 for x in exprs for e in walk_exprs(x) if isinstance(e, (BinOp, UnOp))
    )


_BUILTIN_PYNAMES = {
    "tid": "_tid", "start": "_lo", "end": "_hi", "num_threads": "_xnt",
}


class _Emitter:
    def __init__(self, kernel: Kernel, report: VectorizationReport,
                 databuf_mode: str):
        self.k = kernel
        self.report = report
        self.databuf_mode = databuf_mode
        self.lines: list = []
        self.indent = 1
        self.tmp = 0
        self.sid = 0
        self.views: dict = {}     # (array, field) -> pyname
        self.residents: dict = {}  # array -> pyname
        self.params: dict = {}     # name -> pyname
        self.site_meta: list = []  # queue-mode pop sites: (nbytes, dtype)

    # ----------------------------------------------------------- plumbing
    def w(self, s: str) -> None:
        self.lines.append("    " * self.indent + s)

    def fresh(self, stem: str) -> str:
        self.tmp += 1
        return f"_{stem}{self.tmp}"

    def view(self, array: str, fname: str) -> str:
        key = (array, fname)
        if key not in self.views:
            self.views[key] = f"_f_{_san(array)}_{_san(fname)}"
        return self.views[key]

    def resident(self, array: str) -> str:
        if array not in self.residents:
            self.residents[array] = f"_r_{_san(array)}"
        return self.residents[array]

    def param(self, name: str) -> str:
        if name not in self.params:
            self.params[name] = f"_p_{_san(name)}"
        return self.params[name]

    # --------------------------------------------------------- expressions
    def expr(self, e: Expr, env: dict, ncur: str, lanes: str) -> str:
        if isinstance(e, Const):
            return repr(e.value)
        if isinstance(e, Var):
            return env[e.name]
        if isinstance(e, Param):
            return self.param(e.name)
        if isinstance(e, BinOp):
            lhs = self.expr(e.lhs, env, ncur, lanes)
            rhs = self.expr(e.rhs, env, ncur, lanes)
            if e.op in ("and", "or", "min", "max"):
                return f"rt.b_{e.op}({lhs}, {rhs})"
            return f"({lhs} {e.op} {rhs})"
        if isinstance(e, UnOp):
            v = self.expr(e.operand, env, ncur, lanes)
            if e.op == "not":
                return f"rt.b_not({v})"
            return f"({e.op}{v})"
        if isinstance(e, Call):
            args = ", ".join(self.expr(a, env, ncur, lanes) for a in e.args)
            sep = ", " if args else ""
            return f"rt.call({e.fn!r}, {ncur}{sep}{args})"
        if isinstance(e, Load):
            fspec = self.k.schema(e.ref.array).field(e.ref.field_name)
            idx = self.expr(e.ref.index, env, ncur, lanes)
            return (
                f"rt.gather({self.view(e.ref.array, e.ref.field_name)}, "
                f"{idx}, {fspec.nbytes}, {ncur})"
            )
        if isinstance(e, DataBufLoad):
            ref = e.original
            schema = self.k.schema(ref.array)
            fspec = schema.field(ref.field_name)
            if self.databuf_mode == "queue":
                site = len(self.site_meta)
                self.site_meta.append((fspec.nbytes, fspec.dtype))
                return f"rt.pop_site({site}, {fspec.nbytes}, {ncur})"
            idx = self.expr(ref.index, env, ncur, lanes)
            off = f"(({idx}) * {schema.record_size} + {fspec.offset})"
            return (
                f"rt.window_load({ref.array!r}, {off}, {fspec.nbytes}, "
                f"{fspec.dtype!r}, {ncur})"
            )
        if isinstance(e, ResidentLoad):
            idx = self.expr(e.index, env, ncur, lanes)
            return f"rt.res_load({self.resident(e.array)}, {idx}, {ncur})"
        raise VectorizationError(
            f"cannot lower expression {type(e).__name__}"
        )

    # ---------------------------------------------------------- statements
    def _count_ops(self, s: Stmt, ncur: str) -> None:
        k = _n_ops(_stmt_eval_exprs(s))
        if k:
            self.w(f"stats.n_ops += {k} * {ncur}")

    def body(self, stmts, env: dict, ncur: str, lanes: str) -> None:
        before = len(self.lines)
        for s in stmts:
            self.stmt(s, env, ncur, lanes)
        if len(self.lines) == before:
            self.w("pass")

    def stmt(self, s: Stmt, env: dict, ncur: str, lanes: str) -> None:
        if isinstance(s, Assign):
            self._count_ops(s, ncur)
            code = self.expr(s.value, env, ncur, lanes)
            target = env.get("__prefix__", "v_") + _san(s.var)
            self.w(f"{target} = {code}")
            env[s.var] = target
        elif isinstance(s, Store):
            self._count_ops(s, ncur)
            fspec = self.k.schema(s.ref.array).field(s.ref.field_name)
            sv = self.fresh("sv")
            self.w(f"{sv} = {self.expr(s.value, env, ncur, lanes)}")
            idx = self.expr(s.ref.index, env, ncur, lanes)
            self.w(
                f"rt.scatter({self.view(s.ref.array, s.ref.field_name)}, "
                f"{idx}, {sv}, {fspec.nbytes}, {ncur})"
            )
        elif isinstance(s, WriteBufStore):
            self._count_ops(s, ncur)
            schema = self.k.schema(s.original.array)
            fspec = schema.field(s.original.field_name)
            sv = self.fresh("sv")
            self.w(f"{sv} = {self.expr(s.value, env, ncur, lanes)}")
            idx = self.expr(s.original.index, env, ncur, lanes)
            off = f"({idx}) * {schema.record_size} + {fspec.offset}"
            self.w(
                f"rt.writebuf({s.original.array!r}, {lanes}, {off}, {sv}, "
                f"{fspec.nbytes}, {fspec.dtype!r}, {ncur})"
            )
        elif isinstance(s, EmitAddress):
            self._count_ops(s, ncur)
            schema = self.k.schema(s.ref.array)
            fspec = schema.field(s.ref.field_name)
            idx = self.expr(s.ref.index, env, ncur, lanes)
            off = f"({idx}) * {schema.record_size} + {fspec.offset}"
            log = "rt.write_log" if s.is_write else "rt.read_log"
            self.w(
                f"rt.emit({log}, {s.ref.array!r}, {lanes}, {off}, "
                f"{fspec.nbytes}, {fspec.dtype!r}, {ncur})"
            )
        elif isinstance(s, ResidentStore):
            self._count_ops(s, ncur)
            ri = self.fresh("ri")
            self.w(f"{ri} = {self.expr(s.index, env, ncur, lanes)}")
            rv = self.fresh("rv")
            self.w(f"{rv} = {self.expr(s.value, env, ncur, lanes)}")
            self.w(
                f"rt.res_store({self.resident(s.array)}, {ri}, {rv}, {ncur})"
            )
        elif isinstance(s, AtomicAdd):
            self._count_ops(s, ncur)
            ri = self.fresh("ri")
            self.w(f"{ri} = {self.expr(s.index, env, ncur, lanes)}")
            rv = self.fresh("rv")
            self.w(f"{rv} = {self.expr(s.value, env, ncur, lanes)}")
            self.w(
                f"rt.atomic({self.resident(s.array)}, {ri}, {rv}, {ncur})"
            )
        elif isinstance(s, ExprStmt):
            self._count_ops(s, ncur)
            self.w(f"_ = {self.expr(s.expr, env, ncur, lanes)}")
        elif isinstance(s, If):
            self._if(s, env, ncur, lanes)
        elif isinstance(s, For):
            self._for(s, env, ncur, lanes)
        else:  # pragma: no cover - analysis rejects everything else
            raise VectorizationError(
                f"cannot lower statement {type(s).__name__}"
            )

    def _for(self, s: For, env: dict, ncur: str, lanes: str) -> None:
        self._count_ops(s, ncur)
        start = self.expr(s.start, env, ncur, lanes)
        end = self.expr(s.end, env, ncur, lanes)
        step = self.expr(s.step, env, ncur, lanes)
        jname = env.get("__prefix__", "v_") + _san(s.var)
        self.w(f"for {jname} in range(int({start}), int({end}), int({step})):")
        env[s.var] = jname
        self.indent += 1
        self.body(s.body, env, ncur, lanes)
        self.indent -= 1

    @staticmethod
    def _names_in(stmts) -> tuple:
        reads: set = set()
        assigns: set = set()
        for s in walk_stmts(stmts):
            for x in _stmt_eval_exprs(s):
                reads |= _expr_reads(x)
            if isinstance(s, Assign):
                assigns.add(s.var)
            elif isinstance(s, For):
                assigns.add(s.var)
        return reads, assigns

    def _if(self, s: If, env: dict, ncur: str, lanes: str) -> None:
        self._count_ops(s, ncur)
        cond = self.expr(s.cond, env, ncur, lanes)
        if _is_param_uniform(s.cond):
            # the whole launch takes the same branch: plain Python control
            # flow, shared variable namespace (definite-assignment analysis
            # guarantees no branch-local value escapes unassigned)
            self.w(f"if {cond}:")
            self.indent += 1
            env_t = dict(env)
            self.body(s.then_body, env_t, ncur, lanes)
            self.indent -= 1
            self.w("else:")
            self.indent += 1
            env_e = dict(env)
            self.body(s.else_body, env_e, ncur, lanes)
            self.indent -= 1
            for branch_env in (env_t, env_e):
                for name, pyname in branch_env.items():
                    env.setdefault(name, pyname)
            return

        self.sid += 1
        sid = self.sid
        cm = f"_m{sid}"
        self.w(f"{cm} = rt.mask({cond}, {ncur})")
        nm = f"_mn{sid}"
        self.w(f"{nm} = ~{cm}")

        def branch(stmts, mask: str, tag: str):
            if not stmts:
                return {}, set()
            suffix = f"_s{sid}{tag}"
            blanes = f"_lane{sid}{tag}"
            bn = f"_n{sid}{tag}"
            self.w(f"{blanes} = {lanes}[{mask}]")
            self.w(f"{bn} = {blanes}.shape[0]")
            reads, assigns = self._names_in(stmts)
            benv = {"__prefix__": f"v{suffix}_"}
            for name, pyname in env.items():
                if name == "__prefix__":
                    continue
                if name in BUILTIN_VARS:
                    benv[name] = pyname
                    continue
                if name in reads or name in assigns:
                    local = f"v{suffix}_{_san(name)}"
                    self.w(f"{local} = rt.compress({pyname}, {mask})")
                    benv[name] = local
                else:
                    benv[name] = pyname
            self.body(stmts, benv, bn, blanes)
            return benv, assigns

        env_t, assigned_t = branch(s.then_body, cm, "t")
        env_e, assigned_e = branch(s.else_body, nm, "e")
        prefix = env.get("__prefix__", "v_")
        for name in sorted(assigned_t | assigned_e):
            base = env.get(name, None)
            tv = env_t[name] if name in assigned_t else None
            ev = env_e[name] if name in assigned_e else None
            target = prefix + _san(name)
            self.w(
                f"{target} = rt.blend({cm}, {base or 'None'}, "
                f"{tv or 'None'}, {ev or 'None'})"
            )
            env[name] = target

    # -------------------------------------------------------------- driver
    def build(self) -> str:
        body_lines = self.lines  # filled below, preamble prepended after
        rec_for = None
        pre: list = []
        for stmt in self.k.body:
            if isinstance(stmt, For):
                rec_for = stmt
                break
            pre.append(stmt)
        assert rec_for is not None

        env: dict = {
            name: pyname for name, pyname in _BUILTIN_PYNAMES.items()
        }
        env["__prefix__"] = "v_"
        for stmt in pre:
            self.stmt(stmt, env, "1", "None")

        self._count_ops(rec_for, "1")
        rec = env["__prefix__"] + _san(rec_for.var)
        start = self.expr(rec_for.start, env, "1", "None")
        end = self.expr(rec_for.end, env, "1", "None")
        step = self.expr(rec_for.step, env, "1", "None")
        self.w(
            f"{rec} = np.arange(int({start}), int({end}), int({step}), "
            "dtype=np.int64)"
        )
        self.w(f"_n0 = {rec}.shape[0]")
        self.w("if _n0 == 0:")
        self.w("    return")
        self.w("_lane0 = np.arange(_n0)")
        self.w("rt.root_lanes = _lane0")
        env[rec_for.var] = rec
        self.body(rec_for.body, env, "_n0", "_lane0")

        header = [
            "def _compiled(rt):",
            "    ctx = rt.ctx",
            "    stats = rt.stats",
            "    _lo = rt.lo",
            "    _hi = rt.hi",
            "    _tid = rt.tid",
        ]
        if any(v == "_xnt" for v in _BUILTIN_PYNAMES.values()):
            header.append("    _xnt = rt.extra.get('num_threads')")
        for (array, fname), pyname in sorted(self.views.items()):
            header.append(f"    {pyname} = ctx.mapped[{array!r}][{fname!r}]")
        for array, pyname in sorted(self.residents.items()):
            header.append(f"    {pyname} = ctx.resident[{array!r}]")
        for name, pyname in sorted(self.params.items()):
            header.append(f"    {pyname} = ctx.params[{name!r}]")
        return "\n".join(header + body_lines) + "\n"


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

@dataclass
class CompiledKernel:
    """A kernel lowered to a NumPy batch function over ``[lo, hi)``."""

    kernel: Kernel
    source: str
    report: VectorizationReport
    n_sites: int
    site_meta: tuple
    _fn: Any

    def run_range(
        self,
        ctx: ExecutionContext,
        lo: int,
        hi: int,
        tid: int = 0,
        data_queue: Optional[Iterable] = None,
        fallback_windows: Optional[dict] = None,
        **extra: Any,
    ) -> CompiledRun:
        """Execute the whole record range at once; returns the run's
        stats and (for addrgen/databuf forms) its logs."""
        rt = _Runtime(ctx, lo, hi, tid, extra)
        if fallback_windows:
            rt.windows = dict(fallback_windows)
        if data_queue is not None and self.n_sites:
            rt.set_sites(data_queue, self.n_sites, self.site_meta)
        self._fn(rt)
        return CompiledRun(rt)


def compile_kernel(
    kernel: Kernel,
    vector_fns: Iterable[str] = (),
    resident_kinds: Optional[dict] = None,
    databuf_mode: str = "window",
) -> CompiledKernel:
    """Lower ``kernel`` to a batch function, or raise
    :class:`~repro.errors.VectorizationError` naming every obstruction."""
    report = analyze_vectorizable(
        kernel,
        vector_fns=vector_fns,
        resident_kinds=resident_kinds,
        databuf_mode=databuf_mode,
    )
    if not report.ok:
        raise VectorizationError(
            f"kernel {kernel.name!r} is not vectorizable: "
            + "; ".join(report.reasons)
        )
    emitter = _Emitter(kernel, report, databuf_mode)
    source = emitter.build()
    namespace: dict = {"np": np}
    exec(compile(source, f"<compiled:{kernel.name}>", "exec"), namespace)
    return CompiledKernel(
        kernel=kernel,
        source=source,
        report=report,
        n_sites=len(emitter.site_meta),
        site_meta=tuple(emitter.site_meta),
        _fn=namespace["_compiled"],
    )


def try_compile_kernel(
    kernel: Kernel,
    vector_fns: Iterable[str] = (),
    resident_kinds: Optional[dict] = None,
    databuf_mode: str = "window",
) -> Optional[CompiledKernel]:
    """:func:`compile_kernel`, returning None instead of raising."""
    try:
        return compile_kernel(
            kernel, vector_fns=vector_fns, resident_kinds=resident_kinds,
            databuf_mode=databuf_mode,
        )
    except VectorizationError:
        return None


def resident_kinds_of(resident: dict) -> dict:
    """dtype-kind map (``analyze_vectorizable``'s shape) from live state."""
    return {
        k: (v.dtype.kind if isinstance(v, np.ndarray) and v.ndim == 1
            else None)
        for k, v in resident.items()
    }


def vector_fn_names(device_fns: dict) -> set:
    """Device functions carrying a ``vectorized`` batch implementation."""
    return {
        name for name, fn in device_fns.items()
        if callable(getattr(fn, "vectorized", None))
    }


# ---------------------------------------------------------------------------
# closed-form affine address streams
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AffineStream:
    """Closed-form description of a purely affine emitted address stream.

    Record ``i`` emits addresses ``i * rec_stride + offsets[k]`` in event
    order; the whole ``[lo, hi)`` stream is therefore
    ``base + stride * arange`` arithmetic — no per-element records."""

    array: str
    rec_stride: int
    offsets: tuple
    nbytes: tuple

    def expand(self, lo: int, hi: int) -> np.ndarray:
        i = np.arange(lo, hi, dtype=np.int64)
        offs = np.asarray(self.offsets, dtype=np.int64)
        return (i[:, None] * self.rec_stride + offs).ravel()

    def pattern(self, lo: int):
        """Equivalent :class:`~repro.runtime.pattern.StridePattern` —
        feedable to ``PatternRecognizer``/``AdaptiveAddressTracker``
        consumers without materializing the stream."""
        from repro.runtime.pattern import StridePattern

        offs = self.offsets
        strides = tuple(
            offs[k + 1] - offs[k] for k in range(len(offs) - 1)
        ) + (self.rec_stride - (offs[-1] - offs[0]),)
        return StridePattern(
            base=lo * self.rec_stride + offs[0], strides=strides
        )


def _affine_index(e: Expr, rec_var: str) -> Optional[tuple]:
    """``(a, b)`` with ``index == a * rec_var + b``, or None."""
    if isinstance(e, Const):
        return (0, e.value) if isinstance(e.value, int) else None
    if isinstance(e, Var):
        return (1, 0) if e.name == rec_var else None
    if isinstance(e, UnOp) and e.op == "-":
        sub = _affine_index(e.operand, rec_var)
        return None if sub is None else (-sub[0], -sub[1])
    if isinstance(e, BinOp):
        lhs = _affine_index(e.lhs, rec_var)
        rhs = _affine_index(e.rhs, rec_var)
        if lhs is None or rhs is None:
            return None
        if e.op == "+":
            return (lhs[0] + rhs[0], lhs[1] + rhs[1])
        if e.op == "-":
            return (lhs[0] - rhs[0], lhs[1] - rhs[1])
        if e.op == "*":
            if lhs[0] == 0:
                return (lhs[1] * rhs[0], lhs[1] * rhs[1])
            if rhs[0] == 0:
                return (lhs[0] * rhs[1], lhs[1] * rhs[1])
    return None


def affine_streams(
    kernel: Kernel,
) -> Optional[tuple]:
    """``(read_stream, write_stream)`` for a straight-line affine addrgen
    kernel, or None when any emit sits under control flow or has a
    non-affine index. Either element may be None when that side emits
    nothing (or mixes record strides)."""
    rec_for = None
    for stmt in kernel.body:
        if isinstance(stmt, For):
            if rec_for is not None:
                return None
            rec_for = stmt
        elif any(isinstance(s, EmitAddress) for s in walk_stmts([stmt])):
            return None
    if rec_for is None:
        return None
    if rec_for.start != Var("start") or rec_for.end != Var("end"):
        return None

    reads: list = []
    writes: list = []
    for stmt in rec_for.body:
        for sub in walk_stmts([stmt]):
            if not isinstance(sub, EmitAddress):
                continue
            if sub is not stmt:
                return None  # emit under control flow
            schema = kernel.schema(sub.ref.array)
            fspec = schema.field(sub.ref.field_name)
            aff = _affine_index(sub.ref.index, rec_for.var)
            if aff is None:
                return None
            a, b = aff
            entry = (
                sub.ref.array,
                a * schema.record_size,
                b * schema.record_size + fspec.offset,
                fspec.nbytes,
            )
            (writes if sub.is_write else reads).append(entry)

    def fold(entries) -> Optional[AffineStream]:
        if not entries:
            return None
        arrays = {e[0] for e in entries}
        strides = {e[1] for e in entries}
        if len(arrays) != 1 or len(strides) != 1:
            return None
        return AffineStream(
            array=entries[0][0],
            rec_stride=entries[0][1],
            offsets=tuple(e[2] for e in entries),
            nbytes=tuple(e[3] for e in entries),
        )

    return fold(reads), fold(writes)
