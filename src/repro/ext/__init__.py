"""Extensions beyond the paper's evaluated system.

* :mod:`repro.ext.mapreduce` — the paper's stated future work ("we plan on
  applying BigKernel to MapReduce"): a map/reduce front end that compiles a
  record-wise mapper + associative reducer into a streaming
  :class:`~repro.apps.base.Application`, so arbitrary MapReduce jobs run on
  every execution scheme (including BigKernel) unchanged.
* :mod:`repro.ext.multigpu` — sharding the stream across several simulated
  GPUs, each with its own pipeline (and optionally its own PCIe link).
  Now a first-class engine in :mod:`repro.engines.multigpu`; the module
  here is a re-export shim.
* :mod:`repro.ext.uvm` — a fault-driven unified-memory baseline: the
  mechanism that later delivered BigKernel's programming model in the
  driver, and the historical reason this line of work was superseded.
"""

from repro.ext.mapreduce import MapReduceSpec, MapReduceApp, make_clickstream_job
from repro.ext.multigpu import MultiGpuBigKernelEngine
from repro.ext.uvm import GpuUvmEngine, UvmSpec

__all__ = [
    "MapReduceSpec",
    "MapReduceApp",
    "make_clickstream_job",
    "MultiGpuBigKernelEngine",
    "GpuUvmEngine",
    "UvmSpec",
]
