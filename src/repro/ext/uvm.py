"""Deprecated location of the unified-memory baseline.

The closed-form UVM stub that used to live here grew into a first-class
engine family: a page-fault-driven DES model with a real page table,
LRU eviction, dirty-page write-back, and prefetch variants. It now lives
in :mod:`repro.engines.uvm` (page table in :mod:`repro.hw.paging`); this
module re-exports the public names so existing imports keep working.
"""

from repro.engines.uvm import GpuUvmEngine, UvmSpec

__all__ = ["GpuUvmEngine", "UvmSpec"]
