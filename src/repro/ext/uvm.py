"""Unified-virtual-memory baseline (historical-context extension).

BigKernel (2014) predates usable on-demand page migration; later CUDA
Unified Memory delivers the same *programmability* (no chunking, no
buffers, one launch over arbitrarily large data) directly in the driver.
This engine models a fault-driven UVM executor so the reproduction can
show both sides of that history:

* UVM matches BigKernel's programming model and roughly matches
  double-buffering performance (migration at pinned-DMA speed, no staging
  memcpy, the prefetcher hiding most fault latencies) — without a line of
  buffer-management code;
* but for streaming workloads it still loses to BigKernel's pipeline:
  page-granular migration moves *whole pages* (so sparse readers get no
  volume reduction), un-hidden fault servicing stalls the kernel, and the
  data lands in its original (uncoalesced) layout.

Model: execution interleaves fault-service batches with computation on
migrated pages. Pages arrive at ``pinned bandwidth`` with a per-page
service overhead (driver fault handling, TLB shootdowns), discounted by a
sequential-prefetch factor; computation overlaps migration except for the
un-hidable fault stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig, RunMetrics, RunResult
from repro.engines.gpu_common import chunk_plan, kernel_chunk_cost
from repro.errors import RuntimeConfigError
from repro.hw.gpu import GpuDevice
from repro.units import KiB, US


@dataclass(frozen=True)
class UvmSpec:
    """Driver parameters of the modelled unified-memory implementation."""

    #: migration granularity (basic UVM page)
    page_bytes: int = 64 * KiB
    #: CPU-side service cost of one page fault (handler + mapping update)
    fault_latency: float = 25 * US
    #: fraction of faults the driver's sequential prefetcher hides for
    #: streaming access (it queues neighbour pages ahead of the faulting
    #: thread)
    prefetch_hit: float = 0.65
    #: fraction of the un-prefetched fault stalls that computation on
    #: already-resident pages can cover
    overlap: float = 0.2

    def __post_init__(self):
        if self.page_bytes < 4096:
            raise RuntimeConfigError("page_bytes must be >= 4096")
        if not 0.0 <= self.prefetch_hit <= 1.0:
            raise RuntimeConfigError("prefetch_hit must be in [0, 1]")
        if not 0.0 <= self.overlap <= 1.0:
            raise RuntimeConfigError("overlap must be in [0, 1]")


class GpuUvmEngine(Engine):
    """Fault-driven unified-memory execution (no explicit transfers)."""

    name = "gpu_uvm"
    display_name = "GPU Unified Memory"

    def __init__(self, spec: UvmSpec = UvmSpec()):
        self.spec = spec

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        hw = config.hardware
        profile = app.access_profile(data)
        totals = self.totals(app, data, profile)
        gpu = GpuDevice(hw.gpu)

        units = totals["units"]
        threads = config.total_compute_threads

        # Page-granular migration: records are tiny next to a page, so any
        # read inside a page migrates the whole page — the entire mapped
        # range crosses the link regardless of the read fraction.
        migrated_bytes = totals["data_bytes"]
        n_pages = -(-int(migrated_bytes) // self.spec.page_bytes)
        migrate_bw_t = migrated_bytes / hw.pcie.pinned_bandwidth
        raw_fault_t = n_pages * self.spec.fault_latency
        # the prefetcher hides most fault latencies; computation hides part
        # of the rest
        stall_t = raw_fault_t * (1.0 - self.spec.prefetch_hit) * (
            1.0 - self.spec.overlap
        )

        # Kernel computation on the original (uncoalesced) layout; pages
        # already resident compute while others migrate, so the two
        # components overlap like double-buffering: max(), plus the stalls.
        comp_t = 0.0
        for _ in range(profile.passes):
            cost = kernel_chunk_cost(profile, units, coalesced=False)
            comp_t += gpu.stage_time(cost, threads)
        # mapped writes migrate dirty pages back once at the end
        writeback = totals["write_bytes"]
        wb_pages = -(-int(writeback) // self.spec.page_bytes) if writeback else 0
        wb_t = (
            writeback / hw.pcie.pinned_bandwidth
            + wb_pages * self.spec.fault_latency * (1.0 - self.spec.prefetch_hit)
            if writeback
            else 0.0
        )

        # bandwidth-bound migration overlaps computation on resident pages;
        # the un-hidden fault stalls do not overlap anything
        migration_total = migrate_bw_t * profile.passes
        sim_time = (
            max(comp_t, migration_total)
            + stall_t * profile.passes
            + wb_t
            + gpu.spec.kernel_launch_overhead
        )

        upc, _ = chunk_plan(units, config.chunk_bytes, profile.record_bytes)
        bounds = app.chunk_bounds(data, upc)
        output = self._functional_output(app, data, bounds)
        metrics = RunMetrics(
            n_chunks=n_pages,
            bytes_h2d=int(migrated_bytes * profile.passes),
            bytes_d2h=int(writeback),
            comp_time=comp_t,
            comm_time=migration_total + wb_t,
            kernel_launches=1,  # UVM keeps BigKernel's single-launch model
            notes={
                "pages": n_pages,
                "fault_stall": stall_t,
                "page_bytes": self.spec.page_bytes,
            },
        )
        return RunResult(self.name, app.name, output, sim_time, metrics)
