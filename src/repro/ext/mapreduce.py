"""MapReduce over streamed records (the paper's future-work direction).

A :class:`MapReduceSpec` describes a job: the record schema, which fields
the mapper reads, a vectorized mapper emitting ``(key, value)`` pairs, and
an associative reducer. :class:`MapReduceApp` turns that into a full
:class:`~repro.apps.base.Application`, so the job runs on all five
execution schemes — with BigKernel streaming the records, prefetching only
the mapper's input fields, and reducing into a GPU-resident table.

The map phase is embarrassingly record-parallel (the paper's target
class); the reduce phase is an associative accumulation into a resident
table, merged across chunks — semantically the combiner/reducer of
classic MapReduce with a fixed key space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.apps.base import AccessProfile, AppData, Application
from repro.errors import ApplicationError
from repro.kernelc.ir import RecordSchema
from repro.units import MiB

#: built-in associative reducers: (numpy scatter-reduce, identity element)
REDUCERS: dict[str, tuple[Callable, float]] = {
    "sum": (np.add.at, 0.0),
    "count": (np.add.at, 0.0),
    "max": (np.maximum.at, -np.inf),
    "min": (np.minimum.at, np.inf),
}


@dataclass(frozen=True)
class MapReduceSpec:
    """Declarative description of one MapReduce job."""

    name: str
    schema: RecordSchema
    #: fields of each record the mapper consumes (drives prefetch volume)
    read_fields: tuple[str, ...]
    #: vectorized mapper: (record batch as structured array, params) ->
    #: (int64 keys array, float64 values array); one pair per record
    mapper: Callable[[np.ndarray, dict], tuple[np.ndarray, np.ndarray]]
    #: one of "sum", "count", "max", "min"
    reducer: str
    #: size of the key space (resident result table length)
    n_keys: int
    #: synthetic record generator: (rng, n_records) -> structured array
    generator: Callable[[np.random.Generator, int], np.ndarray]
    #: arithmetic cost of the mapper per record (GPU ops; scalar CPU cost
    #: is assumed 2x — mapper code is branchy on a CPU)
    map_ops_per_record: float = 50.0
    #: warp-divergence factor of the mapper + reduce atomics
    gpu_divergence: float = 4.0

    def __post_init__(self):
        if self.reducer not in REDUCERS:
            raise ApplicationError(
                f"unknown reducer {self.reducer!r}; known: {sorted(REDUCERS)}"
            )
        if self.n_keys < 1:
            raise ApplicationError("n_keys must be >= 1")
        if not self.read_fields:
            raise ApplicationError("mapper must read at least one field")
        for f in self.read_fields:
            self.schema.field(f)  # raises on unknown field


class MapReduceApp(Application):
    """An Application generated from a MapReduceSpec."""

    writes_mapped = False

    def __init__(self, spec: MapReduceSpec, paper_data_bytes: int = 64 * MiB):
        self.spec = spec
        self.name = f"mapreduce_{spec.name}"
        self.display_name = f"MapReduce: {spec.name}"
        self.paper_data_bytes = paper_data_bytes

    # ------------------------------------------------------------- data
    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        n_bytes = n_bytes or self.default_bytes()
        n = max(1, n_bytes // self.spec.schema.record_size)
        rng = np.random.default_rng(seed)
        records = self.spec.generator(rng, n)
        if records.dtype.itemsize != self.spec.schema.record_size:
            raise ApplicationError(
                "generator produced records not matching the schema"
            )
        _, identity = REDUCERS[self.spec.reducer]
        return AppData(
            app=self.name,
            mapped={"records": records},
            schemas={"records": self.spec.schema},
            resident={"table": np.full(self.spec.n_keys, identity)},
            params={"numR": n},
            primary="records",
        )

    # ----------------------------------------------------- map + reduce
    def make_state(self, data: AppData) -> Any:
        _, identity = REDUCERS[self.spec.reducer]
        return {"table": np.full(self.spec.n_keys, identity, dtype=np.float64)}

    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        batch = data.mapped["records"][lo:hi]
        keys, values = self.spec.mapper(batch, data.params)
        keys = np.asarray(keys, dtype=np.int64)
        if keys.min(initial=0) < 0 or keys.max(initial=0) >= self.spec.n_keys:
            raise ApplicationError("mapper emitted keys outside [0, n_keys)")
        if self.spec.reducer == "count":
            values = np.ones_like(keys, dtype=np.float64)
        scatter, _ = REDUCERS[self.spec.reducer]
        scatter(state["table"], keys, np.asarray(values, dtype=np.float64))

    def finalize(self, data: AppData, state: Any) -> np.ndarray:
        return state["table"]

    def outputs_equal(self, a: Any, b: Any) -> bool:
        return bool(np.allclose(a, b, rtol=0, atol=1e-9, equal_nan=True))

    # ---------------------------------------------------- characterization
    def access_profile(self, data: AppData) -> AccessProfile:
        schema = self.spec.schema
        fields = [schema.field(f) for f in self.spec.read_fields]
        read_bytes = float(sum(f.nbytes for f in fields))
        elem = max(f.nbytes for f in fields)
        # contiguous span the mapper touches (for pattern-driven gathering)
        lo = min(f.offset for f in fields)
        hi = max(f.offset + f.nbytes for f in fields)
        span = float(hi - lo)
        contiguous = abs(span - read_bytes) < 1e-9
        return AccessProfile(
            record_bytes=schema.record_size,
            read_bytes_per_record=read_bytes,
            write_bytes_per_record=0.0,
            reads_per_record=len(fields),
            writes_per_record=0.0,
            elem_bytes=elem,
            gpu_ops_per_record=self.spec.map_ops_per_record,
            cpu_ops_per_record=2.0 * self.spec.map_ops_per_record,
            resident_bytes_per_record=16.0,  # one table RMW per record
            pattern_friendly=True,
            sliceable=True,
            gather_granularity_bytes=span if contiguous else float(elem),
            addresses_per_record=1.0 if contiguous else float(len(fields)),
            gpu_divergence=self.spec.gpu_divergence,
        )

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        schema = self.spec.schema
        base = np.arange(lo, hi, dtype=np.int64) * schema.record_size
        offs = np.array(
            sorted(schema.field(f).offset for f in self.spec.read_fields),
            dtype=np.int64,
        )
        return (base[:, None] + offs[None, :]).reshape(-1)


# ---------------------------------------------------------------------------
# A ready-made job: clickstream URL hit counting
# ---------------------------------------------------------------------------

CLICK = RecordSchema.packed(
    [
        ("url", "i4"),
        ("user", "i4"),
        ("timestamp", "i8"),
        ("referrer", "i4"),
        ("status", "i4"),
        ("latency_ms", "f4"),
    ],
    record_size=32,
)

N_URLS = 4096


def _click_generator(rng: np.random.Generator, n: int) -> np.ndarray:
    arr = np.zeros(n, dtype=CLICK.numpy_dtype())
    ranks = np.arange(1, N_URLS + 1, dtype=np.float64)
    probs = ranks**-1.1
    probs /= probs.sum()
    arr["url"] = rng.choice(N_URLS, size=n, p=probs)
    arr["user"] = rng.integers(0, 1 << 20, n)
    arr["timestamp"] = rng.integers(0, 1 << 40, n)
    arr["status"] = rng.choice([200, 404, 500], size=n, p=[0.95, 0.04, 0.01])
    arr["latency_ms"] = rng.gamma(2.0, 20.0, n).astype(np.float32)
    return arr


def _click_mapper(batch: np.ndarray, params: dict) -> tuple[np.ndarray, np.ndarray]:
    return batch["url"].astype(np.int64), np.ones(batch.shape[0])


def make_clickstream_job(reducer: str = "count") -> MapReduceApp:
    """URL hit counting over a zipf-distributed clickstream.

    The mapper reads only the 4-byte url field of each 32-byte record
    (12.5%), so BigKernel's volume reduction shines.
    """
    spec = MapReduceSpec(
        name="clickstream",
        schema=CLICK,
        read_fields=("url",),
        mapper=_click_mapper,
        reducer=reducer,
        n_keys=N_URLS,
        generator=_click_generator,
        map_ops_per_record=30.0,
        gpu_divergence=4.0,
    )
    return MapReduceApp(spec)
