"""Deprecated location of the multi-GPU engine.

The multi-GPU shard-per-device pipeline started here as an extension and
is now a first-class engine: it lives in :mod:`repro.engines.multigpu`
alongside the other execution schemes. This module re-exports the public
name so existing imports keep working.
"""

from repro.engines.multigpu import MultiGpuBigKernelEngine

__all__ = ["MultiGpuBigKernelEngine"]
