"""Exception hierarchy for the BigKernel reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation engine."""


class Interrupt(SimulationError):
    """Raised inside a simulated process that another process interrupted.

    Mirrors SimPy's ``Interrupt``: the ``cause`` attribute carries the value
    supplied by the interrupter.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Deadlock(SimulationError):
    """The event queue drained while processes were still waiting."""


class HardwareError(ReproError):
    """Errors raised by the hardware cost models."""


class GpuOutOfMemory(HardwareError):
    """A GPU-side allocation exceeded the device's global memory."""


class PinnedMemoryExceeded(HardwareError):
    """CPU-side pinned allocations exceeded the configured host limit."""


class AllocationError(HardwareError):
    """Generic allocator failure (double free, unknown handle, ...)."""


class CompilerError(ReproError):
    """Errors raised by the kernel IR compiler (``repro.kernelc``)."""


class IRValidationError(CompilerError):
    """The kernel IR failed structural validation."""


class SlicingError(CompilerError):
    """The address-generation slice could not be derived.

    The paper's fallback in this situation is to fetch *all* data (degrading
    to double-buffering behaviour); the runtime treats this exception as the
    trigger for that fallback.
    """


class VectorizationError(CompilerError):
    """The kernel cannot be lowered to the vectorized (compiled) backend.

    Raised only when the caller *demanded* compilation
    (``kernel_exec="compiled"``); under ``"auto"`` the analysis verdict
    silently routes execution to the tree-walking interpreter instead.
    """


class RuntimeConfigError(ReproError):
    """Invalid BigKernel runtime configuration (buffer sizes, block counts)."""


class BufferOverrun(ReproError):
    """A pipeline stage wrote past the end of its staged buffer."""


class SynchronizationError(ReproError):
    """Pipeline synchronization protocol violation (e.g. consume-before-produce)."""


class FaultError(ReproError):
    """Errors raised by the fault-injection subsystem (``repro.faults``)."""


class FaultConfigError(FaultError):
    """A :class:`~repro.faults.plan.FaultPlan` primitive got invalid arguments."""


class DmaFaultError(FaultError):
    """An injected DMA error persisted past the retry policy's attempt budget.

    The degradation policy (``repro.faults.policies``) retries a failed DMA
    with exponential backoff; when the injected fault outlives the budget,
    the transfer is declared permanently failed and this error propagates
    out of the simulated run.
    """


class DegradationError(FaultError):
    """No degradation policy could absorb the injected fault.

    Raised when, e.g., pinned-memory pressure cannot be satisfied even at the
    minimum ring depth and block count and no engine fallback applies.
    """


class ApplicationError(ReproError):
    """Errors raised by the benchmark applications."""


class ServeError(ReproError):
    """Errors raised by the multi-tenant serving layer (``repro.serve``)."""


class SloViolationError(ServeError):
    """A request could not (or predictably will not) meet its deadline.

    Carried on terminal responses the scheduler sheds at dispatch time
    (the deadline had already passed on the virtual clock) and on
    admission rejections whose priced backlog made the deadline
    unreachable. The message names the deadline and the evidence.
    """


class VerificationError(ReproError):
    """A simulated timeline or differential run violated a checked law."""


class ValidationFailure(ReproError):
    """An engine produced output that does not match the CPU reference."""
