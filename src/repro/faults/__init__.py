"""Deterministic fault injection and graceful degradation.

The package has four layers:

* :mod:`repro.faults.plan` — the immutable, seeded :class:`FaultPlan` DSL
  (``plan.pcie.degrade(...)``, ``plan.dma.error(...)``,
  ``plan.assembly.stall(...)``, ``plan.pinned.deny(...)``);
* :mod:`repro.faults.inject` — the per-run :class:`FaultInjector` the
  runtime hooks consult;
* :mod:`repro.faults.policies` — the degradation policies (DMA retry with
  exponential backoff, ring-depth/block shrink under pinned pressure);
* :mod:`repro.faults.chaos` — the ``python -m repro chaos`` sweep producing
  a :class:`~repro.faults.report.FaultReport`.

``chaos`` is imported lazily: it pulls in the engines, which themselves
import this package (``EngineConfig.faults`` is a :class:`FaultPlan`), so
an eager import would be circular.

See ``docs/faults.md`` for the full story.
"""

from repro.faults.inject import DmaOutcome, FaultInjector, as_injector
from repro.faults.plan import (
    AssemblyStall,
    DmaError,
    FaultPlan,
    PcieDegrade,
    PinnedDeny,
)
from repro.faults.policies import (
    BACKOFF_BASE,
    MAX_DMA_ATTEMPTS,
    backoff_delay,
    degrade_buffer_plan,
    retry_schedule,
)
from repro.faults.report import FaultCell, FaultReport

__all__ = [
    "FaultPlan",
    "PcieDegrade",
    "DmaError",
    "AssemblyStall",
    "PinnedDeny",
    "FaultInjector",
    "DmaOutcome",
    "as_injector",
    "MAX_DMA_ATTEMPTS",
    "BACKOFF_BASE",
    "backoff_delay",
    "retry_schedule",
    "degrade_buffer_plan",
    "FaultCell",
    "FaultReport",
    "run_chaos",
    "default_fault_grid",
]


def __getattr__(name):
    if name in ("run_chaos", "default_fault_grid", "chaos"):
        # importlib, not ``from repro.faults import chaos``: the from-import
        # would re-enter this __getattr__ while the submodule is still
        # loading and recurse.
        import importlib

        _chaos = importlib.import_module("repro.faults.chaos")
        if name == "chaos":
            return _chaos
        return getattr(_chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
