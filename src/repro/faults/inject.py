"""Per-run fault-injection state.

A :class:`FaultInjector` is the mutable companion of an immutable
:class:`~repro.faults.plan.FaultPlan`: one injector is created per simulated
run, the hooks in :class:`~repro.hw.pcie.PcieLink` and
:mod:`repro.runtime.pipeline` consult it, and it keeps deterministic
bookkeeping (retries injected, stalls applied, transfers degraded) that the
chaos runner folds into its :class:`~repro.faults.report.FaultReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import (
    AssemblyStall,
    DmaError,
    FaultPlan,
    PcieDegrade,
    PinnedDeny,
)
from repro.faults.policies import retry_schedule


@dataclass(frozen=True)
class DmaOutcome:
    """Resolved injection for one transfer: the attempts it must burn."""

    #: backoff delay after each failed attempt (len == failed attempts)
    backoffs: tuple
    #: True when the transfer must be declared permanently failed afterwards
    fatal: bool


class FaultInjector:
    """Answers the runtime's "does anything go wrong *here*?" questions."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self._degrades = sorted(
            self.plan.of_type(PcieDegrade), key=lambda e: (e.at, e.bandwidth)
        )
        self._dma = self.plan.of_type(DmaError)
        self._stalls = self.plan.of_type(AssemblyStall)
        self._denies = self.plan.of_type(PinnedDeny)
        # deterministic bookkeeping
        self.retries_injected = 0
        self.fatal_dmas = 0
        self.stalls_injected = 0
        self.stall_time = 0.0
        self.degraded_transfers = 0

    # -- activity queries --------------------------------------------------
    @property
    def active(self) -> bool:
        return self.plan.active()

    # -- PCIe bandwidth degradation ---------------------------------------
    def bandwidth_cap(self, now: float) -> Optional[float]:
        """Lowest injected bandwidth cap in effect at time ``now`` (bytes/s)."""
        caps = [d.bandwidth for d in self._degrades if d.at <= now]
        return min(caps) if caps else None

    def transfer_time(
        self, spec, nbytes: int, pinned: bool, segments: int, now: float
    ) -> float:
        """Duration of one DMA under any degradation active at ``now``.

        Mirrors :meth:`repro.hw.spec.PcieSpec.transfer_time` exactly when no
        cap applies, so clean runs are bit-identical with or without an
        injector attached.
        """
        cap = self.bandwidth_cap(now)
        if cap is None:
            return spec.transfer_time(nbytes, pinned, segments)
        if segments < 1:
            raise ValueError(f"segments must be >= 1, got {segments}")
        if nbytes <= 0:
            return spec.latency * segments
        bw = spec.pinned_bandwidth if pinned else spec.pageable_bandwidth
        if cap < bw:
            self.degraded_transfers += 1
            bw = cap
        return spec.latency * segments + nbytes / bw

    # -- DMA errors --------------------------------------------------------
    def dma_outcome(
        self, label: str, direction: str, chunk: Optional[int]
    ) -> Optional[DmaOutcome]:
        """The injected failure schedule for this transfer, if any."""
        if chunk is None or not self._dma:
            return None
        retries = sum(
            e.retries
            for e in self._dma
            if e.chunk == chunk and e.direction == direction and e.stage == label
        )
        if retries == 0:
            return None
        backoffs, fatal = retry_schedule(retries)
        return DmaOutcome(backoffs=backoffs, fatal=fatal)

    def note_retry(self) -> None:
        self.retries_injected += 1

    def note_fatal(self) -> None:
        self.fatal_dmas += 1

    # -- assembly stalls ---------------------------------------------------
    def assembly_stall(self, chunk: int) -> float:
        """Extra seconds the assembly of ``chunk`` must stall."""
        return sum(
            s.seconds for s in self._stalls if s.chunk is None or s.chunk == chunk
        )

    def note_stall(self, seconds: float) -> None:
        self.stalls_injected += 1
        self.stall_time += seconds

    # -- pinned pressure ---------------------------------------------------
    def pinned_deny_after(self) -> Optional[int]:
        return min(d.after_bytes for d in self._denies) if self._denies else None

    # -- reporting ---------------------------------------------------------
    def stats(self) -> dict:
        """Deterministic summary of what was actually injected this run."""
        return {
            "plan": self.plan.describe(),
            "retries_injected": self.retries_injected,
            "fatal_dmas": self.fatal_dmas,
            "stalls_injected": self.stalls_injected,
            "stall_time": self.stall_time,
            "degraded_transfers": self.degraded_transfers,
        }


def as_injector(faults) -> Optional[FaultInjector]:
    """Coerce None / FaultPlan / FaultInjector to an optional injector."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    raise TypeError(
        f"faults must be a FaultPlan or FaultInjector, got {type(faults).__name__}"
    )
