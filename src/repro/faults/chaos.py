"""The chaos sweep: an app x engine matrix under a grid of fault plans.

For every cell the runner executes the engine clean (no plan), then under
the plan, and checks that graceful degradation actually was graceful:

* the faulted run completes (or raises a *typed*
  :class:`~repro.errors.ReproError` subclass — anything else is a bug);
* the functional output still matches the ``cpu_serial`` oracle
  bit-for-bit (fault handling must never corrupt data);
* the faulted timeline passes every trace invariant — including byte
  conservation, which proves retried DMA attempts are accounted separately
  from delivered payload.

Everything is seeded and deterministic: the same seed produces a
byte-identical :class:`~repro.faults.report.FaultReport`
(``report.fingerprint()`` is the contract ``tests/test_faults.py`` pins).
Exposed as ``python -m repro chaos [--quick]``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.apps import KMeansApp, WordCountApp
from repro.engines import (
    BigKernelEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
)
from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultCell, FaultReport
from repro.units import MiB
from repro.verify.invariants import verify_run


def default_fault_grid(seed: int = 7) -> tuple[FaultPlan, ...]:
    """One plan per primitive — the standard 4-fault chaos grid."""
    return (
        FaultPlan(seed=seed, name="pcie-degrade").pcie.degrade(gbps=2.0),
        FaultPlan(seed=seed, name="dma-retry").dma.error(chunk=1, retries=2),
        FaultPlan(seed=seed, name="assembly-stall").assembly.stall(ms=0.05),
        FaultPlan(seed=seed, name="pinned-pressure").pinned.deny(
            after_bytes=1 * MiB
        ),
    )


def run_chaos(
    quick: bool = False,
    seed: int = 7,
    data_bytes: Optional[int] = None,
    apps: Optional[Iterable] = None,
    engines: Optional[Iterable] = None,
    plans: Optional[Iterable[FaultPlan]] = None,
    config: Optional[EngineConfig] = None,
) -> FaultReport:
    """Run the fault grid over the app x engine matrix.

    ``quick`` is CI scale: one app, 1 MiB datasets. The full sweep covers a
    write-free app (wordcount) and a mapped-writes app (kmeans, which
    exercises the 6-stage pipeline and the pinned write-landing buffers).
    """
    data_bytes = data_bytes or (1 * MiB if quick else 4 * MiB)
    config = config or EngineConfig(chunk_bytes=max(256 * 1024, data_bytes // 8))
    apps = (
        list(apps)
        if apps is not None
        else ([WordCountApp()] if quick else [WordCountApp(), KMeansApp()])
    )
    engines = (
        list(engines)
        if engines is not None
        else [GpuDoubleBufferEngine(), BigKernelEngine()]
    )
    plans = tuple(plans) if plans is not None else default_fault_grid(seed)

    report = FaultReport(seed=seed)
    oracle = CpuSerialEngine()
    for app in apps:
        data = app.generate(n_bytes=data_bytes, seed=seed)
        ref = oracle.run(app, data, config)
        for engine in engines:
            clean = engine.run(app, data, config)
            for plan in plans:
                cfg = config.with_(faults=plan)
                cell = FaultCell(
                    app=app.name,
                    engine=engine.name,
                    plan=plan.name or plan.describe(),
                    clean_time=clean.sim_time,
                )
                try:
                    res = engine.run(app, data, cfg)
                except ReproError as exc:
                    # a typed error is a *policy decision* (e.g. a DMA fault
                    # past the retry budget), not a crash — but the default
                    # grid is recoverable, so it still fails the cell
                    cell.ok = False
                    cell.error = type(exc).__name__
                    cell.detail = str(exc)
                else:
                    cell.fault_time = res.sim_time
                    problems = []
                    if not app.outputs_equal(ref.output, res.output):
                        problems.append("output mismatch vs cpu_serial")
                    if res.trace is not None:
                        inv = verify_run(res, cfg)
                        if not inv.ok:
                            problems.append(inv.summary())
                    cell.degradations = dict(
                        res.metrics.notes.get("degradations", {})
                    )
                    if "degraded_from" in res.metrics.notes:
                        cell.degradations["fallback"] = (
                            f"{res.metrics.notes['degraded_from']}->{res.engine}"
                        )
                    cell.stats = dict(res.metrics.notes.get("fault_stats", {}))
                    if problems:
                        cell.ok = False
                        cell.detail = "; ".join(problems)
                report.cells.append(cell)
    return report
