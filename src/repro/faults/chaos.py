"""The chaos sweep: an app x engine matrix under a grid of fault plans.

For every cell the runner executes the engine clean (no plan), then under
the plan, and checks that graceful degradation actually was graceful:

* the faulted run completes (or raises a *typed*
  :class:`~repro.errors.ReproError` subclass — anything else is a bug);
* the functional output still matches the ``cpu_serial`` oracle
  bit-for-bit (fault handling must never corrupt data);
* the faulted timeline passes every trace invariant — including byte
  conservation, which proves retried DMA attempts are accounted separately
  from delivered payload.

Everything is seeded and deterministic: the same seed produces a
byte-identical :class:`~repro.faults.report.FaultReport`
(``report.fingerprint()`` is the contract ``tests/test_faults.py`` pins).
That determinism is also what makes the sweep parallelizable: with
``jobs > 1`` the grid is split into per-(app, engine) *blocks*, each block
regenerates its dataset and oracle locally (nothing is shipped between
processes but a picklable spec), and the plan-ordered cells come back in
the exact serial nesting order — so the report fingerprint is identical
whether the sweep ran serial, threaded, or across a process pool.
Exposed as ``python -m repro chaos [--quick] [--jobs N] [--backend B]``.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.apps import KMeansApp, WordCountApp
from repro.engines import (
    BigKernelEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuUvmEngine,
)
from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultCell, FaultReport
from repro.units import MiB
from repro.verify.invariants import verify_run


def default_fault_grid(seed: int = 7) -> tuple[FaultPlan, ...]:
    """One plan per primitive — the standard 4-fault chaos grid."""
    return (
        FaultPlan(seed=seed, name="pcie-degrade").pcie.degrade(gbps=2.0),
        FaultPlan(seed=seed, name="dma-retry").dma.error(chunk=1, retries=2),
        FaultPlan(seed=seed, name="assembly-stall").assembly.stall(ms=0.05),
        FaultPlan(seed=seed, name="pinned-pressure").pinned.deny(
            after_bytes=1 * MiB
        ),
    )


def _judge_outcome(
    app, ref, engine_name, clean, plan, config, outcome
) -> FaultCell:
    """Score one faulted-run outcome against the oracle and the clean run.

    ``outcome`` is either a :class:`~repro.engines.base.RunResult` or the
    typed :class:`~repro.errors.ReproError` the run raised. Splitting the
    judge from the run is what lets serve mode grade outcomes that came
    back through a live :class:`~repro.serve.Server` with the exact same
    code that grades direct runs — the fingerprint contract depends on it.
    """
    cfg = config.with_(faults=plan)
    cell = FaultCell(
        app=app.name,
        engine=engine_name,
        plan=plan.name or plan.describe(),
        clean_time=clean.sim_time,
    )
    if isinstance(outcome, ReproError):
        # a typed error is a *policy decision* (e.g. a DMA fault
        # past the retry budget), not a crash — but the default
        # grid is recoverable, so it still fails the cell
        cell.ok = False
        cell.error = type(outcome).__name__
        cell.detail = str(outcome)
        return cell
    res = outcome
    cell.fault_time = res.sim_time
    problems = []
    if not app.outputs_equal(ref.output, res.output):
        problems.append("output mismatch vs cpu_serial")
    if res.trace is not None:
        inv = verify_run(res, cfg)
        if not inv.ok:
            problems.append(inv.summary())
    cell.degradations = dict(res.metrics.notes.get("degradations", {}))
    if "degraded_from" in res.metrics.notes:
        cell.degradations["fallback"] = (
            f"{res.metrics.notes['degraded_from']}->{res.engine}"
        )
    cell.stats = dict(res.metrics.notes.get("fault_stats", {}))
    if problems:
        cell.ok = False
        cell.detail = "; ".join(problems)
    return cell


def _evaluate_cell(app, data, ref, engine, clean, plan, config) -> FaultCell:
    """One faulted run, judged against the oracle and the clean run.

    Shared by the serial path and both parallel backends so a cell is
    scored by exactly one piece of code.
    """
    try:
        outcome = engine.run(app, data, config.with_(faults=plan))
    except ReproError as exc:
        outcome = exc
    return _judge_outcome(app, ref, engine.name, clean, plan, config, outcome)


def _serve_cell_block(
    app, engine, plans, config, seed, data_bytes
) -> list[FaultCell]:
    """One (app, engine) block with every faulted run routed through a live
    :class:`~repro.serve.Server` instead of a direct ``engine.run``.

    The server runs with caching off (a faulted run must actually execute)
    and the judge is the same :func:`_judge_outcome` as direct mode, so
    the resulting cells — and therefore ``report.fingerprint()`` — are
    identical to a direct sweep over the same grid. That equality is the
    graceful-degradation contract for the serving layer: a fault inside a
    batch produces a typed per-request failure, never a wedged server.
    """
    from repro.apps.base import APP_REGISTRY
    from repro.apps.datagen import DATAGEN_VERSION
    from repro.bench.jobs import DatasetSpec, JobSpec, engine_to_spec
    from repro.serve.scheduler import ServeConfig, Server
    from repro.serve.workload import ServeRequest

    engine_spec = engine_to_spec(engine)
    if engine_spec is None or APP_REGISTRY.get(app.name) is not type(app):
        raise ReproError(
            "chaos serve mode needs registry apps and stock engines "
            "(requests ride as picklable job specs)"
        )
    data = app.generate(n_bytes=data_bytes, seed=seed)
    ref = CpuSerialEngine().run(app, data, config)
    clean = engine.run(app, data, config)
    dataset = DatasetSpec(
        app=app.name, seed=seed, n_bytes=data_bytes, version=DATAGEN_VERSION
    )
    serve_config = ServeConfig(
        cache=False, max_queue=len(plans) + 1, max_batch=max(len(plans), 1)
    )
    with Server(serve_config) as server:
        for i, plan in enumerate(plans):
            job = JobSpec(
                dataset=dataset,
                engine=engine_spec,
                config=config.with_(faults=plan),
            )
            rejection = server.submit(
                ServeRequest(req_id=i, tenant="chaos", arrival=0.0, job=job)
            )
            if rejection is not None:  # sized above the grid; cannot happen
                raise ReproError("chaos serve queue rejected a grid cell")
        responses = {resp.req_id: resp for resp in server.drain()}
    cells = []
    for i, plan in enumerate(plans):
        resp = responses[i]
        outcome = resp.exception if resp.exception is not None else resp.result
        if outcome is None:
            raise ReproError(
                f"serve chaos cell {plan.name!r} came back with neither a "
                f"result nor a typed error (status {resp.status!r})"
            )
        cells.append(
            _judge_outcome(app, ref, engine.name, clean, plan, config, outcome)
        )
    return cells


def _cell_block(app, engine, plans, config, seed, data_bytes) -> list[FaultCell]:
    """All cells of one (app, engine) block, in plan order.

    Regenerates the dataset and reruns the oracle locally — generation is
    deterministic, so the block is self-contained and the cells match what
    the serial nested loop would have produced, byte for byte.
    """
    data = app.generate(n_bytes=data_bytes, seed=seed)
    ref = CpuSerialEngine().run(app, data, config)
    clean = engine.run(app, data, config)
    return [
        _evaluate_cell(app, data, ref, engine, clean, plan, config)
        for plan in plans
    ]


def _cell_block_spec(task) -> list[FaultCell]:
    """Process-pool worker entry: rebuild the block from picklable specs."""
    app_name, engine_spec, plans, config, seed, data_bytes = task
    from repro.apps.base import get_app
    from repro.bench.jobs import engine_from_spec

    return _cell_block(
        get_app(app_name), engine_from_spec(engine_spec), plans, config,
        seed, data_bytes,
    )


def _resolve_backend(backend: str, jobs: int, apps, engines) -> str:
    """Pick the executor; chaos is always DES-bound, so auto favors process."""
    from repro.apps.base import APP_REGISTRY
    from repro.bench.jobs import engine_to_spec
    from repro.bench.sweep import BACKENDS

    if backend not in BACKENDS:
        raise ReproError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if jobs <= 1 or backend == "thread":
        return "thread"
    speccable = all(
        APP_REGISTRY.get(app.name) is type(app) for app in apps
    ) and all(engine_to_spec(engine) is not None for engine in engines)
    if backend == "process":
        if not speccable:
            raise ReproError(
                "backend='process' needs registry apps and stock engines "
                "(workers rebuild both from picklable specs); use "
                "backend='thread' for custom instances"
            )
        return "process"
    # every faulted run forces the DES (faults have no analytic model), so
    # chaos blocks hold the GIL for their whole duration: processes win
    # whenever they are possible at all — except on a 1-2 core box or a
    # tiny grid, where the fork + regeneration tax never amortizes
    cores = os.cpu_count() or 1
    if cores <= 2 or len(apps) * len(engines) < 3:
        return "thread"
    return "process" if speccable else "thread"


def run_chaos(
    quick: bool = False,
    seed: int = 7,
    data_bytes: Optional[int] = None,
    apps: Optional[Iterable] = None,
    engines: Optional[Iterable] = None,
    plans: Optional[Iterable[FaultPlan]] = None,
    config: Optional[EngineConfig] = None,
    jobs: int = 1,
    backend: str = "auto",
    serve: bool = False,
) -> FaultReport:
    """Run the fault grid over the app x engine matrix.

    ``quick`` is CI scale: one app, 1 MiB datasets. The full sweep covers a
    write-free app (wordcount) and a mapped-writes app (kmeans, which
    exercises the 6-stage pipeline and the pinned write-landing buffers).
    Both scales include the unified-memory engine, so every fault primitive
    is also exercised against the demand-paging migration path.

    ``jobs > 1`` fans the per-(app, engine) blocks across an executor —
    ``backend="process"`` (a :class:`~concurrent.futures.ProcessPoolExecutor`
    fed picklable specs, the default under ``"auto"`` since faulted runs
    are DES-bound), or ``backend="thread"`` (shares live instances, works
    for custom apps/engines). Cells are merged in the serial nesting order,
    so ``report.fingerprint()`` is backend-invariant.

    ``serve=True`` routes every faulted run through a live
    :class:`~repro.serve.Server` (``jobs``/``backend`` are ignored — the
    server under test runs in-process) and must produce the identical
    fingerprint: fault containment has to survive the batching layer.
    """
    data_bytes = data_bytes or (1 * MiB if quick else 4 * MiB)
    config = config or EngineConfig(chunk_bytes=max(256 * 1024, data_bytes // 8))
    apps = (
        list(apps)
        if apps is not None
        else ([WordCountApp()] if quick else [WordCountApp(), KMeansApp()])
    )
    engines = (
        list(engines)
        if engines is not None
        else [GpuDoubleBufferEngine(), BigKernelEngine(), GpuUvmEngine()]
    )
    plans = tuple(plans) if plans is not None else default_fault_grid(seed)

    from repro.bench.sweep import BACKENDS

    if backend not in BACKENDS:
        raise ReproError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )

    report = FaultReport(seed=seed)
    blocks = [(app, engine) for app in apps for engine in engines]
    if serve:
        for app, engine in blocks:
            report.cells.extend(
                _serve_cell_block(app, engine, plans, config, seed, data_bytes)
            )
        return report
    if jobs > 1 and len(blocks) > 1:
        resolved = _resolve_backend(backend, jobs, apps, engines)
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        workers = min(jobs, len(blocks))
        if resolved == "process":
            from repro.bench.jobs import engine_to_spec

            tasks = [
                (app.name, engine_to_spec(engine), plans, config, seed,
                 data_bytes)
                for app, engine in blocks
            ]
            with ProcessPoolExecutor(max_workers=workers) as ex:
                # executor.map preserves submission order: blocks come back
                # in the serial nesting order regardless of finish order
                for cells in ex.map(_cell_block_spec, tasks):
                    report.cells.extend(cells)
        else:
            with ThreadPoolExecutor(max_workers=workers) as ex:
                for cells in ex.map(
                    lambda b: _cell_block(
                        b[0], b[1], plans, config, seed, data_bytes
                    ),
                    blocks,
                ):
                    report.cells.extend(cells)
        return report

    oracle = CpuSerialEngine()
    for app in apps:
        data = app.generate(n_bytes=data_bytes, seed=seed)
        ref = oracle.run(app, data, config)
        for engine in engines:
            clean = engine.run(app, data, config)
            for plan in plans:
                report.cells.append(
                    _evaluate_cell(app, data, ref, engine, clean, plan, config)
                )
    return report
