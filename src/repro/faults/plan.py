"""The FaultPlan DSL: deterministic, composable fault descriptions.

A :class:`FaultPlan` is an immutable (hashable) value describing *what goes
wrong* during one simulated run. Plans are built fluently through the
namespace accessors — each call returns a **new** plan, so partially-built
plans can be shared and reused::

    plan = (
        FaultPlan(seed=7)
        .pcie.degrade(gbps=4, at=0.001)      # link drops to 4 GB/s at t=1ms
        .dma.error(chunk=2, retries=2)       # chunk 2's DMA fails twice
        .assembly.stall(ms=0.5)              # every assembly stalls 0.5 ms
        .pinned.deny(after_bytes=32 << 20)   # pinned allocs denied past 32 MiB
    )

Because plans are frozen dataclasses they can ride inside
:class:`~repro.engines.base.EngineConfig` and participate in the engines'
memoization cache keys. Everything is deterministic: the same plan applied
to the same run produces the identical timeline, and :meth:`FaultPlan.random`
derives plans from a seed with the string-seeded ``random.Random`` scheme
the fuzz harness (:mod:`repro.verify.fuzz`) uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import FaultConfigError

#: PCIe direction names (kept local: importing :mod:`repro.hw.pcie` here
#: would create an import cycle through the package initializer).
H2D = "h2d"
D2H = "d2h"

#: stage label of the prefetch-buffer data DMA (mirror of
#: ``repro.runtime.pipeline.STAGE_TRANSFER``, local for the same reason)
STAGE_TRANSFER = "data_transfer"

GB = 1e9


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PcieDegrade:
    """From simulated time ``at``, cap the link at ``gbps`` GB/s.

    The cap applies to the bandwidth term of every transfer whose DMA
    *starts* at or after ``at`` (the rate in effect at a transfer's start
    governs the whole transfer — a deterministic simplification).
    """

    gbps: float
    at: float = 0.0

    def __post_init__(self):
        if self.gbps <= 0:
            raise FaultConfigError(f"degraded bandwidth must be positive, got {self.gbps}")
        if self.at < 0:
            raise FaultConfigError(f"degrade time must be non-negative, got {self.at}")

    @property
    def bandwidth(self) -> float:
        """The cap in bytes/second."""
        return self.gbps * GB


@dataclass(frozen=True)
class DmaError:
    """The data DMA of ``chunk`` fails ``retries`` times before succeeding.

    Each failed attempt occupies the DMA channel for the full transfer
    duration (the error is detected at completion, CRC-style), then the
    retry policy backs off exponentially. When ``retries`` exceeds the
    policy's attempt budget the transfer is declared permanently failed and
    a typed :class:`~repro.errors.DmaFaultError` propagates out of the run.
    """

    chunk: int
    retries: int = 1
    direction: str = H2D
    stage: str = STAGE_TRANSFER

    def __post_init__(self):
        if self.chunk < 0:
            raise FaultConfigError(f"chunk index must be non-negative, got {self.chunk}")
        if self.retries < 1:
            raise FaultConfigError(f"retries must be >= 1, got {self.retries}")
        if self.direction not in (H2D, D2H):
            raise FaultConfigError(f"direction must be '{H2D}' or '{D2H}'")


@dataclass(frozen=True)
class AssemblyStall:
    """The assembly thread stalls ``ms`` milliseconds on ``chunk``.

    ``chunk=None`` stalls every chunk. The stalled worker keeps its CPU
    slot (a stalled thread still occupies its hardware thread), so the
    stall lengthens the recorded assembly interval.
    """

    ms: float
    chunk: Optional[int] = None

    def __post_init__(self):
        if self.ms <= 0:
            raise FaultConfigError(f"stall must be positive, got {self.ms} ms")
        if self.chunk is not None and self.chunk < 0:
            raise FaultConfigError(f"chunk index must be non-negative, got {self.chunk}")

    @property
    def seconds(self) -> float:
        return self.ms * 1e-3


@dataclass(frozen=True)
class PinnedDeny:
    """Pinned allocations are denied once usage would exceed ``after_bytes``.

    Models the OS reclaiming page-lock budget from the process. BigKernel's
    degradation policy answers by shrinking the buffer ring toward depth 2,
    then the active-block count, and finally falling back to plain
    double-buffering.
    """

    after_bytes: int

    def __post_init__(self):
        if self.after_bytes < 0:
            raise FaultConfigError(
                f"after_bytes must be non-negative, got {self.after_bytes}"
            )


# ---------------------------------------------------------------------------
# namespace accessors (the `plan.pcie.degrade(...)` surface)
# ---------------------------------------------------------------------------

class _Namespace:
    __slots__ = ("_plan",)

    def __init__(self, plan: "FaultPlan"):
        self._plan = plan


class _PcieNamespace(_Namespace):
    def degrade(self, gbps: float, at: float = 0.0) -> "FaultPlan":
        return self._plan._with(PcieDegrade(gbps=gbps, at=at))


class _DmaNamespace(_Namespace):
    def error(
        self,
        chunk: int,
        retries: int = 1,
        direction: str = H2D,
        stage: str = STAGE_TRANSFER,
    ) -> "FaultPlan":
        return self._plan._with(
            DmaError(chunk=chunk, retries=retries, direction=direction, stage=stage)
        )


class _AssemblyNamespace(_Namespace):
    def stall(self, ms: float, chunk: Optional[int] = None) -> "FaultPlan":
        return self._plan._with(AssemblyStall(ms=ms, chunk=chunk))


class _PinnedNamespace(_Namespace):
    def deny(self, after_bytes: int) -> "FaultPlan":
        return self._plan._with(PinnedDeny(after_bytes=after_bytes))


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultPlan:
    """An immutable bundle of fault primitives plus the seed that built it."""

    seed: int = 0
    name: str = ""
    events: tuple = ()

    def _with(self, event) -> "FaultPlan":
        return replace(self, events=self.events + (event,))

    # -- builders ---------------------------------------------------------
    @property
    def pcie(self) -> _PcieNamespace:
        return _PcieNamespace(self)

    @property
    def dma(self) -> _DmaNamespace:
        return _DmaNamespace(self)

    @property
    def assembly(self) -> _AssemblyNamespace:
        return _AssemblyNamespace(self)

    @property
    def pinned(self) -> _PinnedNamespace:
        return _PinnedNamespace(self)

    # -- queries ----------------------------------------------------------
    def active(self) -> bool:
        """True when the plan injects anything at all."""
        return bool(self.events)

    def of_type(self, kind) -> tuple:
        """Events of one primitive kind: a class, or its namespace name
        (``"pcie"``, ``"dma"``, ``"assembly"``, ``"pinned"``)."""
        if isinstance(kind, str):
            kind = {
                "pcie": PcieDegrade,
                "dma": DmaError,
                "assembly": AssemblyStall,
                "pinned": PinnedDeny,
            }[kind]
        return tuple(e for e in self.events if isinstance(e, kind))

    def pipeline_active(self) -> bool:
        """True when any primitive perturbs the simulated timeline itself
        (as opposed to only the allocation phase)."""
        return any(
            isinstance(e, (PcieDegrade, DmaError, AssemblyStall)) for e in self.events
        )

    def pinned_deny_after(self) -> Optional[int]:
        """The tightest pinned-denial threshold, or None."""
        denies = self.of_type(PinnedDeny)
        return min(d.after_bytes for d in denies) if denies else None

    def describe(self) -> str:
        parts = []
        for e in self.events:
            if isinstance(e, PcieDegrade):
                parts.append(f"pcie.degrade(gbps={e.gbps:g}, at={e.at:g})")
            elif isinstance(e, DmaError):
                parts.append(f"dma.error(chunk={e.chunk}, retries={e.retries})")
            elif isinstance(e, AssemblyStall):
                tgt = "all" if e.chunk is None else e.chunk
                parts.append(f"assembly.stall(ms={e.ms:g}, chunk={tgt})")
            elif isinstance(e, PinnedDeny):
                parts.append(f"pinned.deny(after_bytes={e.after_bytes})")
            else:  # pragma: no cover - future primitives
                parts.append(repr(e))
        label = self.name or "plan"
        return f"{label}[{'; '.join(parts) or 'empty'}]"

    # -- seeded random plans ----------------------------------------------
    @staticmethod
    def random(
        seed: int,
        max_faults: int = 3,
        max_chunk: int = 5,
        include_pinned: bool = False,
    ) -> "FaultPlan":
        """A deterministic random plan of recoverable faults.

        Uses the string-seeded ``random.Random`` convention of
        :mod:`repro.verify.fuzz`, so a plan is reproducible from ``seed``
        alone. Generated faults are always *recoverable* (retry counts stay
        inside the policy budget); pinned pressure is opt-in because its
        degradation path can re-route the run to another engine.
        """
        rng = random.Random(f"faultplan-{seed}")
        plan = FaultPlan(seed=seed, name=f"random-{seed}")
        kinds = ["pcie", "dma", "assembly"] + (["pinned"] if include_pinned else [])
        # the injector SUMS retries of every DmaError matching a chunk, so
        # keep the per-chunk total below the fatal threshold
        from repro.faults.policies import MAX_DMA_ATTEMPTS

        retries_budget: dict = {}
        for _ in range(rng.randint(1, max(1, max_faults))):
            kind = rng.choice(kinds)
            if kind == "pcie":
                plan = plan.pcie.degrade(
                    gbps=rng.uniform(1.0, 8.0), at=rng.uniform(0.0, 2e-3)
                )
            elif kind == "dma":
                chunk = rng.randint(0, max_chunk)
                headroom = MAX_DMA_ATTEMPTS - 1 - retries_budget.get(chunk, 0)
                if headroom < 1:
                    continue
                retries = rng.randint(1, min(3, headroom))
                retries_budget[chunk] = retries_budget.get(chunk, 0) + retries
                plan = plan.dma.error(chunk=chunk, retries=retries)
            elif kind == "assembly":
                chunk = rng.choice([None, rng.randint(0, max_chunk)])
                plan = plan.assembly.stall(ms=rng.uniform(0.01, 0.5), chunk=chunk)
            else:
                plan = plan.pinned.deny(after_bytes=rng.randrange(1 << 20, 64 << 20))
        return plan
