"""Graceful-degradation policies.

Three policies absorb injected faults instead of letting the run die:

* **DMA retry with exponential backoff** — a failed DMA is re-issued on the
  same channel grant (preserving the per-direction FIFO order the
  completion-flag trick relies on) after ``BACKOFF_BASE * 2**attempt``
  seconds, up to :data:`MAX_DMA_ATTEMPTS` failed attempts. Past the budget
  the transfer is permanently failed (:class:`~repro.errors.DmaFaultError`).
* **Ring-depth shrink under pinned-memory pressure**
  (:func:`degrade_buffer_plan`) — when pinned allocations are denied,
  BigKernel first shrinks the buffer ring toward the paper's minimum of two
  instances, then reduces the active-block count, before giving up.
* **Engine fallback** — when even the minimum buffer plan does not fit,
  :class:`~repro.engines.bigkernel.BigKernelEngine` degrades to plain GPU
  double-buffering (mirroring the paper's fall-back-to-all-data behaviour
  for unsliceable kernels); the analytic fast path likewise yields to the
  discrete-event simulator whenever a plan is active, because injected
  faults make the timeline heterogeneous in ways the closed form cannot
  cover.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PinnedMemoryExceeded

#: failed attempts tolerated per transfer before it is declared dead
#: (1 initial attempt + 3 retries)
MAX_DMA_ATTEMPTS = 4

#: backoff before re-issuing a failed DMA (seconds); doubles per attempt
BACKOFF_BASE = 50e-6


def backoff_delay(attempt: int) -> float:
    """Delay before retry number ``attempt`` (1-based) of a failed DMA."""
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    return BACKOFF_BASE * (2 ** (attempt - 1))


def retry_schedule(retries: int) -> tuple[tuple[float, ...], bool]:
    """``(backoffs, fatal)`` for a transfer injected with ``retries`` failures.

    ``backoffs[i]`` is the wait after failed attempt ``i+1``. ``fatal`` is
    True when the injected failure count exhausts the attempt budget, in
    which case the caller must raise after performing the listed attempts.
    """
    n_failed = min(retries, MAX_DMA_ATTEMPTS)
    fatal = retries >= MAX_DMA_ATTEMPTS
    # no point backing off after the terminal attempt
    backoffs = tuple(
        backoff_delay(a) for a in range(1, n_failed + (0 if fatal else 1))
    )[:n_failed]
    if fatal and backoffs:
        backoffs = backoffs[:-1] + (0.0,)
    return backoffs, fatal


def degrade_buffer_plan(
    buf_cfg,
    active_blocks: int,
    pinned_budget: int,
    min_instances: int = 2,
) -> tuple[object, int, dict]:
    """Shrink a buffer plan until its pinned footprint fits ``pinned_budget``.

    Tries ring depths from the configured one down to ``min_instances``
    (the paper's hard floor for producer/consumer overlap), and at each
    depth takes as many active blocks as the budget affords. Returns
    ``(buf_cfg, active_blocks, degradations)`` where ``degradations``
    records what was given up; raises
    :class:`~repro.errors.PinnedMemoryExceeded` when even one block at the
    minimum depth does not fit.
    """
    if active_blocks < 1:
        raise ValueError(f"active_blocks must be >= 1, got {active_blocks}")
    for instances in range(buf_cfg.instances, min_instances - 1, -1):
        candidate = buf_cfg.with_instances(instances)
        per_block = candidate.pinned_bytes_per_block()
        blocks = min(active_blocks, pinned_budget // per_block)
        if blocks >= 1:
            degradations: dict = {}
            if instances != buf_cfg.instances:
                degradations["ring_shrunk_to"] = instances
            if blocks != active_blocks:
                degradations["blocks_shrunk_to"] = int(blocks)
            return candidate, int(blocks), degradations
    raise PinnedMemoryExceeded(
        f"pinned budget {pinned_budget} cannot hold even one block's buffer "
        f"set at ring depth {min_instances} "
        f"({buf_cfg.with_instances(min_instances).pinned_bytes_per_block()} "
        f"bytes needed)"
    )
