"""Structured results of a chaos sweep.

Pure data — no engine or app imports — so the bench harness and the tests
can consume :class:`FaultReport` without pulling the whole runtime in. A
report serializes to canonical JSON (:meth:`FaultReport.to_json`) and hashes
to a :meth:`FaultReport.fingerprint`, which is how determinism is asserted:
two chaos runs with the same seed must produce byte-identical JSON.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.errors import VerificationError


@dataclass
class FaultCell:
    """One (app, engine, plan) cell of the chaos matrix."""

    app: str
    engine: str
    plan: str
    ok: bool = True
    #: sim_time of the fault-free run of the same (app, engine) pair
    clean_time: float = 0.0
    #: sim_time under the fault plan (0.0 when the run raised)
    fault_time: float = 0.0
    #: exception type name when the run raised a typed ReproError
    error: str = ""
    detail: str = ""
    #: what the degradation policies gave up (ring depth, blocks, fallback)
    degradations: dict = field(default_factory=dict)
    #: the injector's bookkeeping (retries, stalls, degraded transfers)
    stats: dict = field(default_factory=dict)

    @property
    def slowdown(self) -> float:
        """Faulted time over clean time (0.0 when either is unknown)."""
        if self.clean_time > 0 and self.fault_time > 0:
            return self.fault_time / self.clean_time
        return 0.0


@dataclass
class FaultReport:
    """Outcome of one ``python -m repro chaos`` sweep."""

    seed: int = 0
    cells: list[FaultCell] = field(default_factory=list)

    @property
    def failures(self) -> list[FaultCell]:
        return [c for c in self.cells if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"chaos seed={self.seed}: {len(self.cells)} cell(s), "
            f"{len(self.failures)} failure(s)"
        ]
        for c in self.cells:
            status = "ok" if c.ok else "FAIL"
            line = f"  {c.app:12s} x {c.engine:12s} x {c.plan:16s} {status}"
            if c.error:
                line += f" [{c.error}]"
            elif c.slowdown:
                line += f" {c.slowdown:6.2f}x slowdown"
            if c.degradations:
                parts = ", ".join(f"{k}={v}" for k, v in sorted(c.degradations.items()))
                line += f" ({parts})"
            if not c.ok and c.detail:
                line += f" — {c.detail.splitlines()[0]}"
            lines.append(line)
        lines.append("chaos: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — the determinism contract."""
        payload = {
            "seed": self.seed,
            "cells": [asdict(c) for c in self.cells],
        }
        return json.dumps(payload, sort_keys=True, default=str)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON; equal seeds ⇒ equal fingerprints."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def raise_if_failed(self) -> None:
        if self.failures:
            named = ", ".join(
                f"({c.app}, {c.engine}, {c.plan})" for c in self.failures
            )
            raise VerificationError(f"chaos failure in {named}\n{self.summary()}")
