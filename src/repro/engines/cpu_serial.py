"""CPU-based serial implementation — the Fig. 4(a) speedup denominator."""

from __future__ import annotations

from typing import Optional

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig, RunMetrics, RunResult
from repro.hw.cpu import CpuDevice


class CpuSerialEngine(Engine):
    """One host thread streaming over the data."""

    name = "cpu_serial"
    display_name = "CPU Serial"

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        profile = app.access_profile(data)
        totals = self.totals(app, data, profile)
        cpu = CpuDevice(config.hardware.cpu)

        # The serial implementation touches all record bytes every pass and
        # performs the scalar arithmetic of the kernel.
        sim_time = cpu.serial_compute_time(
            n_ops=totals["cpu_ops"] * profile.passes,
            bytes_streamed=totals["data_bytes"] * profile.passes,
        )
        output = app.reference(data) if config.functional else None
        metrics = RunMetrics(
            n_chunks=1,
            comp_time=sim_time,
            comm_time=0.0,
            notes={"threads": 1},
        )
        return RunResult(self.name, app.name, output, sim_time, metrics)
