"""Engine base class, configuration, and run metrics."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.apps.base import AccessProfile, AppData, Application
from repro.errors import RuntimeConfigError
from repro.faults.plan import FaultPlan
from repro.hw.spec import DEFAULT_HARDWARE, HardwareSpec
from repro.sim.trace import TraceRecorder
from repro.units import MiB


@dataclass(frozen=True)
class EngineConfig:
    """Knobs shared by every execution scheme.

    The paper configures each implementation with the thread count and
    buffer sizes that empirically perform best; these defaults are the
    best-of-sweep values for the default workloads (see
    ``benchmarks/test_ablation_buffers.py`` for the sweep itself).
    """

    hardware: HardwareSpec = DEFAULT_HARDWARE
    #: payload capacity of one GPU-side buffer instance
    chunk_bytes: int = 8 * MiB
    #: thread blocks launched (BigKernel may activate fewer, Section IV-D)
    num_blocks: int = 16
    #: computation threads per block (BigKernel adds as many addr-gen ones)
    compute_threads: int = 256
    #: buffer instances per set (ring depth)
    ring_depth: int = 3
    #: enable online pattern recognition (Table II's switch)
    pattern_recognition: bool = True
    #: allow the analytic steady-state pipeline (repro.runtime.fastpath)
    #: when the run qualifies; False forces the discrete-event simulator
    #: (and thus a full trace) everywhere
    fastpath: bool = True
    #: compute the app's functional output (the semantics cross-check);
    #: False skips it — timing-only runs for sweeps and perf benchmarks,
    #: where ``RunResult.output`` is None
    functional: bool = True
    #: deterministic fault plan (``repro.faults``); None = clean run. An
    #: active plan forces the DES and engages the degradation policies
    faults: Optional[FaultPlan] = None
    #: kernel-IR executor: "compiled" demands the vectorized NumPy backend
    #: (raises ``VectorizationError`` for kernels it cannot lower), "interp"
    #: forces the tree-walking interpreter, "auto" compiles when the
    #: vectorizability analysis admits the kernel and falls back otherwise
    kernel_exec: str = "auto"
    #: prefetcher of the unified-memory engines (``repro.engines.uvm``):
    #: "none" keeps the driver's partial readahead only, "readahead" adds
    #: the adaptive sequential window, "learned" the pattern-descriptor
    #: prefetcher; ignored by the non-UVM engines
    prefetch: str = "none"

    def __post_init__(self):
        if self.kernel_exec not in ("auto", "compiled", "interp"):
            raise RuntimeConfigError(
                "kernel_exec must be 'auto', 'compiled', or 'interp'"
            )
        if self.prefetch not in ("none", "readahead", "learned"):
            raise RuntimeConfigError(
                "prefetch must be 'none', 'readahead', or 'learned'"
            )
        if self.chunk_bytes < 1024:
            raise RuntimeConfigError("chunk_bytes must be at least 1 KiB")
        if self.num_blocks < 1:
            raise RuntimeConfigError("num_blocks must be >= 1")
        if self.compute_threads < 32 or self.compute_threads % 32:
            raise RuntimeConfigError(
                "compute_threads must be a positive multiple of the warp size"
            )
        if self.ring_depth < 2:
            raise RuntimeConfigError("ring_depth must be >= 2")

    @property
    def total_compute_threads(self) -> int:
        return self.num_blocks * self.compute_threads

    def with_(self, **overrides) -> "EngineConfig":
        return replace(self, **overrides)


@dataclass
class RunMetrics:
    """Counted work and timeline breakdown of one engine run."""

    n_chunks: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    #: time spent computing (GPU kernel or CPU loop)
    comp_time: float = 0.0
    #: time spent moving data (staging + DMA), for Fig. 4(b)
    comm_time: float = 0.0
    #: per-stage busy totals (BigKernel; Fig. 6)
    stage_totals: dict = field(default_factory=dict)
    #: fraction of sampled addr-gen threads whose stream compressed to a
    #: pattern descriptor
    pattern_fraction: float = 0.0
    kernel_launches: int = 0
    notes: dict = field(default_factory=dict)

    @property
    def comp_comm_ratio(self) -> float:
        """Computation share of comp+comm (Fig. 4(b)'s y-axis)."""
        total = self.comp_time + self.comm_time
        return self.comp_time / total if total > 0 else 0.0


@dataclass
class RunResult:
    """Outcome of one engine run: output + simulated time + metrics."""

    engine: str
    app: str
    output: Any
    sim_time: float
    metrics: RunMetrics
    trace: Optional[TraceRecorder] = None

    def speedup_over(self, other: "RunResult") -> float:
        """``other.sim_time / self.sim_time`` (how much faster *self* is)."""
        if self.sim_time <= 0:
            raise RuntimeConfigError("cannot compute speedup of a zero-time run")
        return other.sim_time / self.sim_time


class Engine(abc.ABC):
    """One execution scheme."""

    name: str = ""
    display_name: str = ""

    @property
    def cache_key(self) -> str:
        """Identity of this engine for run-result caching (bench.sweep).

        Engines whose behaviour depends on constructor state must extend
        this (BigKernel appends its feature-ablation label)."""
        return self.name

    @abc.abstractmethod
    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        """Execute ``app`` over ``data``; returns output + simulated time."""

    def run_batch(
        self,
        app: Application,
        data: AppData,
        configs: list[EngineConfig],
    ) -> list[RunResult]:
        """Run one dataset under several configs as a single batch entry.

        The serving layer (``repro.serve``) coalesces compatible requests
        into one pass over the engine; this hook is where an engine may
        amortize work across the batch. The default is the trivially
        correct sequential loop — per-result semantics identical to
        calling :meth:`run` once per config. Engines with shareable state
        (BigKernel shares functional outputs across configs with equal
        chunk bounds) override it; every override must keep each result
        bit-equal to the corresponding one-shot :meth:`run`.
        """
        return [self.run(app, data, cfg) for cfg in configs]

    # ------------------------------------------------------------- shared
    @staticmethod
    def _functional_output(
        app: Application, data: AppData, bounds: list[tuple[int, int]]
    ) -> Any:
        """Run the app's chunked kernel over all passes (the semantics every
        scheme shares; schemes differ only in data movement)."""
        state = app.make_state(data)
        for p in range(app.n_passes):
            app.start_pass(data, state, p)
            for lo, hi in bounds:
                app.process_chunk(data, state, lo, hi)
        return app.finalize(data, state)

    @staticmethod
    def totals(app: Application, data: AppData, profile: AccessProfile) -> dict:
        """Aggregate work quantities every cost model starts from."""
        units = app.n_units(data)
        return {
            "units": units,
            "data_bytes": units * profile.record_bytes,
            "read_bytes": units * profile.read_bytes_per_record,
            "write_bytes": units * profile.write_bytes_per_record,
            "reads": units * profile.reads_per_record,
            "writes": units * profile.writes_per_record,
            "gpu_ops": units * profile.gpu_ops_per_record,
            "cpu_ops": units * profile.cpu_ops_per_record,
            "resident_bytes": units * profile.resident_bytes_per_record,
        }
