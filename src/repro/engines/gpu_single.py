"""GPU single-buffer implementation: transfers and kernels serialized.

One staging buffer, one device buffer: for each chunk the host copies data
into the pinned staging buffer, the DMA moves it to the device, the kernel
runs, and (for writers) results come back — all strictly in sequence. This
is the scheme Fig. 4(b)'s computation/communication ratio is reported for.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig, RunMetrics, RunResult
from repro.engines.gpu_common import chunk_plan, kernel_chunk_cost
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice


class GpuSingleBufferEngine(Engine):
    """Serialized chunked execution (no overlap)."""

    name = "gpu_single"
    display_name = "GPU Single Buffer"

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        hw = config.hardware
        profile = app.access_profile(data)
        totals = self.totals(app, data, profile)
        gpu = GpuDevice(hw.gpu)
        cpu = CpuDevice(hw.cpu)

        units = totals["units"]
        upc, n_chunks = chunk_plan(units, config.chunk_bytes, profile.record_bytes)
        threads = config.total_compute_threads

        def chunk_costs(u: int) -> tuple[float, float, int, int]:
            """(comm, comp, bytes_h2d, bytes_d2h) of one ``u``-unit chunk."""
            raw = u * profile.record_bytes
            comm = cpu.staging_copy_time(raw)
            comm += hw.pcie.transfer_time(raw, pinned=True)
            cost = kernel_chunk_cost(profile, u, coalesced=False)
            comp = gpu.stage_time(cost, threads) + gpu.spec.kernel_launch_overhead
            wb = u * profile.write_bytes_per_record
            d2h = 0
            if wb > 0:
                comm += hw.pcie.transfer_time(wb, pinned=True)
                comm += cpu.staging_copy_time(wb)  # apply into the source
                d2h = int(wb)
            return comm, comp, int(raw), d2h

        # Serialized execution has no cross-chunk coupling, so per-pass cost
        # is just (full chunks) x (template cost) + (tail cost): price the
        # two chunk kinds once instead of looping over every chunk.
        n_full, rem = divmod(units, upc)
        comm_f, comp_f, h2d_f, d2h_f = chunk_costs(upc) if n_full else (0, 0, 0, 0)
        comm_t, comp_t, h2d_t, d2h_t = chunk_costs(rem) if rem else (0.0, 0.0, 0, 0)
        passes = profile.passes
        comm = passes * (n_full * comm_f + comm_t)
        comp = passes * (n_full * comp_f + comp_t)
        bytes_h2d = passes * (n_full * h2d_f + h2d_t)
        bytes_d2h = passes * (n_full * d2h_f + d2h_t)
        launches = passes * (n_full + (1 if rem else 0))
        sim_time = comm + comp

        output = None
        if config.functional:
            bounds = app.chunk_bounds(data, upc)
            output = self._functional_output(app, data, bounds)
        metrics = RunMetrics(
            n_chunks=n_chunks * profile.passes,
            bytes_h2d=bytes_h2d,
            bytes_d2h=bytes_d2h,
            comp_time=comp,
            comm_time=comm,
            kernel_launches=launches,
            notes={"units_per_chunk": upc},
        )
        return RunResult(self.name, app.name, output, sim_time, metrics)
