"""GPU single-buffer implementation: transfers and kernels serialized.

One staging buffer, one device buffer: for each chunk the host copies data
into the pinned staging buffer, the DMA moves it to the device, the kernel
runs, and (for writers) results come back — all strictly in sequence. This
is the scheme Fig. 4(b)'s computation/communication ratio is reported for.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig, RunMetrics, RunResult
from repro.engines.gpu_common import chunk_plan, kernel_chunk_cost
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice


class GpuSingleBufferEngine(Engine):
    """Serialized chunked execution (no overlap)."""

    name = "gpu_single"
    display_name = "GPU Single Buffer"

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        hw = config.hardware
        profile = app.access_profile(data)
        totals = self.totals(app, data, profile)
        gpu = GpuDevice(hw.gpu)
        cpu = CpuDevice(hw.cpu)

        units = totals["units"]
        upc, n_chunks = chunk_plan(units, config.chunk_bytes, profile.record_bytes)
        threads = config.total_compute_threads

        comm = 0.0
        comp = 0.0
        launches = 0
        bytes_h2d = 0
        bytes_d2h = 0
        for _ in range(profile.passes):
            remaining = units
            while remaining > 0:
                u = min(upc, remaining)
                raw = u * profile.record_bytes
                comm += cpu.staging_copy_time(raw)
                comm += hw.pcie.transfer_time(raw, pinned=True)
                bytes_h2d += int(raw)
                cost = kernel_chunk_cost(profile, u, coalesced=False)
                comp += gpu.stage_time(cost, threads) + gpu.spec.kernel_launch_overhead
                launches += 1
                wb = u * profile.write_bytes_per_record
                if wb > 0:
                    comm += hw.pcie.transfer_time(wb, pinned=True)
                    comm += cpu.staging_copy_time(wb)  # apply into the source
                    bytes_d2h += int(wb)
                remaining -= u
        sim_time = comm + comp

        bounds = app.chunk_bounds(data, upc)
        output = self._functional_output(app, data, bounds)
        metrics = RunMetrics(
            n_chunks=n_chunks * profile.passes,
            bytes_h2d=bytes_h2d,
            bytes_d2h=bytes_d2h,
            comp_time=comp,
            comm_time=comm,
            kernel_launches=launches,
            notes={"units_per_chunk": upc},
        )
        return RunResult(self.name, app.name, output, sim_time, metrics)
