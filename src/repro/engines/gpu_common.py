"""Shared cost derivations for the GPU-based engines."""

from __future__ import annotations

import math

from repro.apps.base import AccessProfile
from repro.hw.coalescing import AccessPattern
from repro.hw.gpu import KernelCost

#: lane distance used for byte-walk kernels (each thread owns a contiguous
#: slab, so simultaneous lane accesses are slab-lengths apart — effectively
#: uncoalesced)
SLAB_STRIDE = 1 << 16


def original_access_pattern(profile: AccessProfile) -> AccessPattern:
    """Coalescing geometry of the kernel on the *original* data layout.

    Fixed-record apps: consecutive threads process consecutive records, so
    lanes sit one record apart. Byte-walk apps (variable-length): threads
    own contiguous slabs, so lanes are far apart — the paper's observation
    that such apps cannot coalesce in their original form.
    """
    mapped_traffic = profile.read_bytes_per_record + profile.write_bytes_per_record
    total_traffic = mapped_traffic + profile.resident_bytes_per_record
    frac = mapped_traffic / total_traffic if total_traffic > 0 else 1.0
    if profile.record_bytes <= profile.elem_bytes:
        stride = SLAB_STRIDE  # byte-walk slabs
    else:
        stride = int(profile.record_bytes)
    return AccessPattern(
        elem_bytes=profile.elem_bytes,
        record_bytes=max(stride, profile.elem_bytes),
        mapped_fraction=frac,
    )


def kernel_chunk_cost(
    profile: AccessProfile,
    units: float,
    coalesced: bool,
    sync_overhead: float = 0.0,
) -> KernelCost:
    """GPU computation-stage cost over ``units`` records/bytes."""
    pattern = original_access_pattern(profile)
    eff = pattern.kernel_efficiency(coalesced_layout=coalesced)
    mapped = units * (
        profile.read_bytes_per_record + profile.write_bytes_per_record
    )
    resident = units * profile.resident_bytes_per_record
    return KernelCost(
        n_ops=units * profile.gpu_ops_per_record * profile.gpu_divergence,
        global_bytes=mapped + resident,
        efficiency=eff,
        fixed_overhead=sync_overhead,
    )


def addr_gen_chunk_cost(profile: AccessProfile, units: float) -> KernelCost:
    """Address-generation-stage cost: only control flow + address arithmetic
    survive the slice, so the op count is a couple of ops per emitted
    address (paper: this stage "requires only a small fraction of the total
    execution time")."""
    return KernelCost(
        n_ops=units * (2.0 + 3.0 * profile.emitted_addresses_per_record),
        global_bytes=0.0,
        efficiency=1.0,
    )


def chunk_plan(total_units: int, chunk_bytes: int, bytes_per_unit: float) -> tuple[int, int]:
    """(units per chunk, number of chunks per pass)."""
    upc = max(1, int(chunk_bytes / max(bytes_per_unit, 1e-12)))
    return upc, math.ceil(total_units / upc)
