"""Multi-GPU BigKernel.

The paper's pipeline is per-thread-block and its CPU threads are
per-block, so nothing in the design ties it to one device: this extension
shards the unit range across ``n_gpus`` simulated GPUs, each running its
own 4/6-stage pipeline against its own PCIe link (dual-x16 style) or a
shared link, with the host's assembly threads divided among the shards.

The related work the paper cites (Huynh et al., PPoPP'12) maps streaming
graphs onto multi-GPU systems the same way: partition the stream, keep
each device's pipeline independent, synchronize only at the end.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.apps.base import AppData, Application
from repro.engines.base import EngineConfig, RunMetrics, RunResult
from repro.engines.bigkernel import BigKernelEngine, BigKernelFeatures
from repro.errors import RuntimeConfigError
from repro.hw.gpu import GpuDevice
from repro.runtime.pipeline import (
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    STAGE_WRITEBACK_XFER,
    ChunkWork,
    run_pipeline,
)


class MultiGpuBigKernelEngine(BigKernelEngine):
    """BigKernel sharded across several simulated GPUs."""

    name = "bigkernel_multigpu"
    display_name = "GPU BigKernel (multi-GPU)"

    def __init__(
        self,
        n_gpus: int = 2,
        features: BigKernelFeatures = BigKernelFeatures.full(),
        shared_link: bool = False,
    ):
        super().__init__(features)
        if n_gpus < 1:
            raise RuntimeConfigError("n_gpus must be >= 1")
        self.n_gpus = n_gpus
        #: True models all GPUs behind one PCIe root (bandwidth shared);
        #: False models one x16 link per device
        self.shared_link = shared_link
        self.name = f"bigkernel_multigpu{n_gpus}"

    @property
    def cache_key(self) -> str:
        return f"{self.name}:{self.features.label}:shared={self.shared_link}"

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        hw = config.hardware
        gpu = GpuDevice(hw.gpu)
        n = self.n_gpus

        units = app.n_units(data)
        shard_units = -(-units // n)  # ceil
        # host assembly threads are divided among the shards
        workers_per_gpu = max(1, hw.cpu.threads // n)

        shard_hw = hw
        if self.shared_link:
            shard_hw = replace(
                hw, pcie=replace(hw.pcie, raw_bandwidth=hw.pcie.raw_bandwidth / n)
            )

        results = []
        sched = None
        remaining = units
        for g in range(n):
            su = min(shard_units, remaining)
            if su <= 0:
                break
            remaining -= su
            sched = self._schedule(
                app, data, config, units=su, workers_override=workers_per_gpu
            )
            results.append(
                run_pipeline(
                    shard_hw, sched.chunks, sched.pipe_cfg, fastpath=config.fastpath
                )
            )
        assert sched is not None

        # devices run concurrently; the job ends when the slowest shard does
        sim_time = max(r.total_time for r in results) + gpu.spec.kernel_launch_overhead

        output = None
        if config.functional:
            bounds = app.chunk_bounds(data, sched.upc)
            output = self._functional_output(app, data, bounds)

        stage_totals: dict = {}
        for r in results:
            for k, v in r.stage_totals.items():
                stage_totals[k] = stage_totals.get(k, 0.0) + v
        comm = stage_totals.get(STAGE_TRANSFER, 0.0) + stage_totals.get(
            STAGE_WRITEBACK_XFER, 0.0
        )
        metrics = RunMetrics(
            n_chunks=sum(r.n_chunks for r in results),
            bytes_h2d=sum(r.bytes_h2d for r in results),
            bytes_d2h=sum(r.bytes_d2h for r in results),
            comp_time=stage_totals.get(STAGE_COMPUTE, 0.0),
            comm_time=comm,
            stage_totals=stage_totals,
            pattern_fraction=sched.pattern_fraction,
            kernel_launches=len(results),  # one launch per device
            notes={
                "n_gpus": len(results),
                "shared_link": self.shared_link,
                "workers_per_gpu": workers_per_gpu,
                "units_per_shard": shard_units,
                "features": self.features.label,
            },
        )
        return RunResult(self.name, app.name, output, sim_time, metrics)
