"""Multi-GPU BigKernel: contention-aware K-device scale-out.

The paper's pipeline is per-thread-block and its CPU threads are
per-block, so nothing in the design ties it to one device: this engine
partitions the unit range across ``n_gpus`` simulated GPUs, each running
its own 4/6-stage pipeline. Scale-out is *not* free, and the model prices
the three resources K devices actually share:

* **PCIe root complex** — with ``shared_link=True`` every shard's DMAs
  queue on one :class:`~repro.hw.pcie.PcieLink` inside a single combined
  DES (:func:`repro.runtime.multigpu.run_pipeline_sharded`), so
  root-complex serialization emerges from the FIFO grant queue the way
  the SUMMA D2H serial-collection bottleneck does. Dedicated links
  (dual-x16 boards) keep per-shard queues.
* **NUMA memory bandwidth** — each shard's assembly threads stream from
  the node their GPU hangs off; the per-chunk assembly floor is derated
  by :func:`repro.hw.topology.shard_mem_bandwidth` (node bandwidth
  divided among that node's shards, with a penalty when placement is
  NUMA-blind).
* **Host threads** — ``cpu.threads // n_gpus`` assembly workers per
  shard, as before.

Apps with global accumulator outputs (wordcount's count table, kmeans'
assignment counts, netflix's rating moments, mastercard's customer set)
get a **cross-GPU reduce/merge stage**: each shard runs the kernel over
its own unit range against its own state, pass boundaries merge + re-
broadcast the state (mastercard's two-pass protocol), and the final
merge feeds one ``finalize``. The merge's D2H collection + host
reduction time comes from :func:`repro.hw.topology.merge_cost` — the
same closed form the analytic predictor uses, so both agree to the bit
on that component.

The related work the paper cites (Huynh et al., PPoPP'12) maps streaming
graphs onto multi-GPU systems the same way: partition the stream, keep
each device's pipeline independent, synchronize only at the barriers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from repro.apps.base import AppData, Application
from repro.engines.base import EngineConfig, RunMetrics, RunResult
from repro.engines.bigkernel import BigKernelEngine, BigKernelFeatures
from repro.hw.gpu import GpuDevice
from repro.hw.topology import (
    FabricSpec,
    merge_cost,
    node_of_shard,
    shard_mem_bandwidth,
    shard_workers,
    state_nbytes,
)
from repro.runtime.multigpu import run_pipeline_sharded
from repro.runtime.pipeline import (
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    STAGE_WRITEBACK_XFER,
    run_pipeline,
)


def copy_state(state: Any) -> Any:
    """Deep-enough copy of an app accumulator state for re-broadcast."""
    import numpy as np

    if isinstance(state, dict):
        return {
            k: v.copy() if isinstance(v, np.ndarray) else v
            for k, v in state.items()
        }
    return state


class MultiGpuBigKernelEngine(BigKernelEngine):
    """BigKernel sharded across several simulated GPUs."""

    name = "bigkernel_multigpu"
    display_name = "GPU BigKernel (multi-GPU)"

    def __init__(
        self,
        n_gpus: int = 2,
        features: BigKernelFeatures = BigKernelFeatures.full(),
        shared_link: bool = False,
        numa_aware: bool = True,
    ):
        super().__init__(features)
        #: shared host-resource topology (validates n_gpus >= 1)
        self.fabric = FabricSpec(
            n_gpus=n_gpus, shared_link=shared_link, numa_aware=numa_aware
        )
        self.n_gpus = n_gpus
        #: True models all GPUs behind one PCIe root complex (transfers
        #: serialize on its FIFO); False models one x16 link per device
        self.shared_link = shared_link
        #: False leaves assembly threads unplaced (interconnect penalty)
        self.numa_aware = numa_aware
        # the name is the engine's *identity*: it must encode every
        # constructor knob that changes the timeline, or sweep/run-cache
        # entries for two different configurations would collide
        suffix = "_shared" if shared_link else ""
        if not numa_aware:
            suffix += "_numablind"
        self.name = f"bigkernel_multigpu{n_gpus}{suffix}"

    @property
    def cache_key(self) -> str:
        return f"{self.name}:{self.features.label}"

    # ------------------------------------------------------------ planning
    def _shard_plan(self, app: Application, data: AppData, config: EngineConfig):
        """Per-shard schedules with NUMA-derated assembly costs.

        Returns ``(plans, workers)`` where each plan is ``(shard, units,
        schedule)``. Shards on the same node with equal unit counts share
        a memoized schedule (the cache keys on the derated hardware).
        """
        hw = config.hardware
        fabric = self.fabric
        units = app.n_units(data)
        per_shard = -(-units // fabric.n_gpus)  # ceil
        workers = shard_workers(hw.cpu, fabric)

        plans = []
        remaining = units
        for g in range(fabric.n_gpus):
            su = min(per_shard, remaining)
            if su <= 0:
                break
            remaining -= su
            bw = shard_mem_bandwidth(hw.cpu, g, fabric)
            shard_cfg = config
            if bw != hw.cpu.mem_bandwidth:
                shard_cfg = config.with_(
                    hardware=replace(hw, cpu=replace(hw.cpu, mem_bandwidth=bw))
                )
            sched = self._schedule(
                app, data, shard_cfg, units=su, workers_override=workers
            )
            plans.append((g, su, sched))
        return plans, workers

    def _merge_time(self, app: Application, data: AppData, hw, n_shards: int) -> float:
        """Simulated cost of the cross-GPU reduce/merge stage."""
        fabric = self.fabric
        if n_shards != fabric.n_gpus:
            fabric = replace(fabric, n_gpus=n_shards)
        return merge_cost(
            hw, fabric, state_nbytes(app.make_state(data)), app.n_passes
        )

    # ------------------------------------------------- functional sharding
    @staticmethod
    def _partition_bounds(bounds, shard_units):
        """Split the global chunk-bound list contiguously across shards.

        Bounds stay whole (apps align them to record/separator
        boundaries), so a shard boundary shifts to chunk granularity; the
        unit totals still track the schedule's shard split.
        """
        parts: list[list] = [[] for _ in shard_units]
        targets = []
        acc = 0
        for su in shard_units:
            acc += su
            targets.append(acc)
        g = 0
        done = 0
        for lo, hi in bounds:
            while g < len(targets) - 1 and done >= targets[g]:
                g += 1
            parts[g].append((lo, hi))
            done += hi - lo
        return parts

    def _sharded_output(self, app: Application, data: AppData, plans) -> Any:
        """Run the kernel sharded and merge: the functional scale-out path.

        Mirrors the timeline model exactly — per-shard states over
        per-shard unit ranges, a merge + re-broadcast at every pass
        boundary, one merge + ``finalize`` at the end — so merge-stage
        correctness is exercised by every functional run, not just by the
        verification battery.
        """
        upc = plans[0][2].upc
        bounds = app.chunk_bounds(data, upc)
        parts = self._partition_bounds(bounds, [su for _, su, _ in plans])
        states = [app.make_state(data) for _ in parts]
        for pass_idx in range(app.n_passes):
            for state in states:
                app.start_pass(data, state, pass_idx)
            for state, part in zip(states, parts):
                for lo, hi in part:
                    app.process_chunk(data, state, lo, hi)
            if pass_idx < app.n_passes - 1:
                merged = app.merge_states(data, states)
                states = [copy_state(merged) for _ in parts]
        return app.finalize(data, app.merge_states(data, states))

    # ----------------------------------------------------------------- run
    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        hw = config.hardware
        gpu = GpuDevice(hw.gpu)

        plans, workers = self._shard_plan(app, data, config)
        n_shards = len(plans)
        merge_time = self._merge_time(app, data, hw, n_shards)

        shard_details = None
        if self.shared_link or not config.fastpath:
            # one combined DES: shared-link contention must emerge from
            # the single FIFO; with dedicated links the shards share no
            # resource, so the combined timeline equals the independent
            # one — but yields per-shard traces for verification
            sharded = run_pipeline_sharded(
                hw,
                [sched.chunks for _, _, sched in plans],
                [sched.pipe_cfg for _, _, sched in plans],
                shared_link=self.shared_link,
            )
            pipeline_total = sharded.total_time
            shard_results = sharded.shards
            from repro.runtime.fastpath import TemplatedChunks

            shard_details = []
            for (g, su, sched), pres in zip(plans, shard_results):
                chunks = sched.chunks
                if isinstance(chunks, TemplatedChunks):
                    chunks = chunks.materialize()
                shard_details.append(
                    {
                        "shard": g,
                        "units": su,
                        "node": node_of_shard(g, self.fabric),
                        "chunks": chunks,
                        "pipe_cfg": sched.pipe_cfg,
                        "trace": pres.trace,
                        "bytes_h2d": pres.bytes_h2d,
                        "bytes_d2h": pres.bytes_d2h,
                    }
                )
        else:
            # dedicated links + fastpath: per-shard closed form (bit-
            # identical to the DES), total = slowest shard
            shard_results = [
                run_pipeline(
                    hw, sched.chunks, sched.pipe_cfg, fastpath=config.fastpath
                )
                for _, _, sched in plans
            ]
            pipeline_total = max(r.total_time for r in shard_results)

        sim_time = (
            pipeline_total + gpu.spec.kernel_launch_overhead + merge_time
        )

        output = None
        if config.functional:
            output = self._sharded_output(app, data, plans)

        stage_totals: dict = {}
        for r in shard_results:
            for k, v in r.stage_totals.items():
                stage_totals[k] = stage_totals.get(k, 0.0) + v
        comm = stage_totals.get(STAGE_TRANSFER, 0.0) + stage_totals.get(
            STAGE_WRITEBACK_XFER, 0.0
        )
        sched0 = plans[0][2]
        metrics = RunMetrics(
            n_chunks=sum(r.n_chunks for r in shard_results),
            bytes_h2d=sum(r.bytes_h2d for r in shard_results),
            bytes_d2h=sum(r.bytes_d2h for r in shard_results),
            comp_time=stage_totals.get(STAGE_COMPUTE, 0.0),
            comm_time=comm,
            stage_totals=stage_totals,
            pattern_fraction=sched0.pattern_fraction,
            kernel_launches=n_shards,  # one launch per device
            notes={
                "n_gpus": n_shards,
                "shared_link": self.shared_link,
                "numa_aware": self.numa_aware,
                "workers_per_gpu": workers,
                "units_per_shard": [su for _, su, _ in plans],
                "shard_nodes": [
                    node_of_shard(g, self.fabric) for g, _, _ in plans
                ],
                "merge_time": merge_time,
                "features": self.features.label,
            },
        )
        result = RunResult(self.name, app.name, output, sim_time, metrics)
        # per-shard traces/chunks for the verification battery (DES runs
        # only); a plain attribute, not a field — figure harnesses and
        # caches treat RunResult by value
        result.shard_details = shard_details
        return result
