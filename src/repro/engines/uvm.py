"""Unified-virtual-memory competitor engines (fault-driven demand paging).

BigKernel (2014) predates usable on-demand page migration; CUDA Unified
Memory later delivered the same *programmability* (no chunking, no
staging buffers, one launch over arbitrarily large data) directly in the
driver. These engines model that executor as a page-fault-driven
simulation under the DES so it can stand next to the pipelined schemes
in the comparison figures:

* ``gpu_uvm`` — demand paging with the driver's partial sequential
  readahead. Execution walks the mapped range in batches of pages; a
  batch with non-resident pages raises one *grouped* page fault (the
  faulting warps stall for a single driver round trip, amortized across
  the batch), the missing pages migrate over PCIe at pinned-DMA speed,
  and an LRU policy evicts under the modeled device-memory capacity,
  writing dirty pages back.
* ``uvm_readahead`` — a sequential readahead prefetcher with an adaptive
  window (grows on hit, halves on miss) issuing ahead-of-fault
  full-batch migrations, after "A readahead prefetcher for GPU file
  system layer" (PAPERS.md).
* ``uvm_learned`` — a pattern prefetcher that consumes the repo's
  ``AffineStream``/``StridePattern`` descriptors to justify a deep fixed
  window that survives pass boundaries, after "Deep Learning based Data
  Prefetching in CPU-GPU Unified Virtual Memory" (PAPERS.md).

All three run under the DES and emit standard trace intervals
(``data_transfer`` / ``compute`` / ``write_transfer``), so the invariant
checkers and the differential oracle apply unchanged, and PCIe fault
plans (``pcie.degrade``, ``dma.error``) act on the migration DMAs
exactly as they do on the pipelined engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig, RunMetrics, RunResult
from repro.engines.gpu_common import chunk_plan, kernel_chunk_cost
from repro.errors import RuntimeConfigError, SlicingError
from repro.faults.inject import as_injector
from repro.hw.gpu import GpuDevice
from repro.hw.paging import PageTable
from repro.hw.pcie import D2H, H2D, DmaEngine, PcieLink
from repro.runtime.pipeline import (
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    STAGE_WRITEBACK_XFER,
)
from repro.sim.core import Environment
from repro.sim.trace import TraceRecorder
from repro.units import KiB, US

PREFETCH_MODES = ("none", "readahead", "learned")

#: trace label of the un-hidable fault-service stall (cpu track)
FAULT_SERVICE = "fault_service"


@dataclass(frozen=True)
class UvmSpec:
    """Driver parameters of the modelled unified-memory implementation."""

    #: migration granularity (basic UVM page)
    page_bytes: int = 64 * KiB
    #: CPU-side service cost of one grouped fault (handler + mapping
    #: update + PCIe round trip); batching faults amortizes this over the
    #: whole batch rather than paying it per page
    fault_latency: float = 25 * US
    #: fraction of a faulting batch's *successor* the driver's partial
    #: sequential readahead queues ahead of the faulting thread (the
    #: ``prefetch="none"`` baseline still has this, like real UVM)
    prefetch_hit: float = 0.65
    #: fraction of the fault-service stall that computation on
    #: already-resident pages covers
    overlap: float = 0.2
    #: pages per fault group (the driver's fault batch)
    batch_pages: int = 16
    #: modeled device-memory capacity; None sizes it at 75% of the mapped
    #: range (multi-pass apps re-fault, single-pass apps mostly fit),
    #: always clamped to the GPU's physical memory
    device_mem_bytes: Optional[int] = None
    #: readahead window ceiling, in batches
    max_window: int = 32

    def __post_init__(self):
        if self.page_bytes < 4096:
            raise RuntimeConfigError("page_bytes must be >= 4096")
        if self.fault_latency < 0:
            raise RuntimeConfigError("fault_latency must be non-negative")
        if not 0.0 <= self.prefetch_hit <= 1.0:
            raise RuntimeConfigError("prefetch_hit must be in [0, 1]")
        if not 0.0 <= self.overlap <= 1.0:
            raise RuntimeConfigError("overlap must be in [0, 1]")
        if self.batch_pages < 1:
            raise RuntimeConfigError("batch_pages must be >= 1")
        if self.max_window < 1:
            raise RuntimeConfigError("max_window must be >= 1")
        if (
            self.device_mem_bytes is not None
            and self.device_mem_bytes < self.page_bytes
        ):
            raise RuntimeConfigError(
                "device_mem_bytes must hold at least one page"
            )


class _UvmSimulation:
    """One DES run of the paged executor (state shared by the stages)."""

    def __init__(
        self,
        spec: UvmSpec,
        mode: str,
        app: Application,
        data: AppData,
        config: EngineConfig,
    ):
        self.spec = spec
        self.mode = mode
        hw = config.hardware
        self.profile = app.access_profile(data)
        self.totals = Engine.totals(app, data, self.profile)
        self.gpu = GpuDevice(hw.gpu)
        self.units = self.totals["units"]
        self.threads = config.total_compute_threads
        self.passes = self.profile.passes
        self.writes = self.totals["write_bytes"] > 0

        # page-granular migration: any read inside a page moves the whole
        # page, so the paged range is the entire mapped dataset
        total_bytes = int(self.totals["data_bytes"])
        n_pages = -(-total_bytes // spec.page_bytes)
        self.batch_pages = min(spec.batch_pages, n_pages)
        if spec.device_mem_bytes is not None:
            capacity = spec.device_mem_bytes // spec.page_bytes
        else:
            capacity = max(int(0.75 * n_pages), 3 * self.batch_pages)
        capacity = min(
            capacity, max(self.batch_pages, hw.gpu.global_mem_bytes // spec.page_bytes)
        )
        # the current batch is pinned during compute, so it must always fit
        capacity = max(capacity, self.batch_pages)
        self.table = PageTable(total_bytes, spec.page_bytes, capacity)
        self.capacity_batches = capacity // self.batch_pages

        self.n_batches = -(-n_pages // self.batch_pages)
        self.batches = [
            list(range(b * self.batch_pages, min((b + 1) * self.batch_pages, n_pages)))
            for b in range(self.n_batches)
        ]
        self.n_instances = self.passes * self.n_batches
        # per-batch compute time on the original (uncoalesced) layout;
        # stage_time is linear in units, so these sum to the closed-form
        # per-pass total
        self.comp_times = []
        for batch in self.batches:
            span = sum(self.table.page_size(p) for p in batch)
            cost = kernel_chunk_cost(
                self.profile, self.units * span / total_bytes, coalesced=False
            )
            self.comp_times.append(self.gpu.stage_time(cost, self.threads))

        self.env = Environment()
        self.trace = TraceRecorder()
        self.injector = as_injector(config.faults)
        self.link = PcieLink(self.env, hw.pcie, trace=self.trace, faults=self.injector)
        self.dma = DmaEngine(self.link)
        #: page -> migration process currently carrying it
        self.inflight: dict = {}
        self.wb_events: list = []
        self.window = 1
        self.fault_events = 0
        self.fault_stall = 0.0
        self.comp_time = 0.0
        self.learned_source = (
            self._derive_learned_source(app, data) if mode == "learned" else None
        )

    # -------------------------------------------------------------- run
    def execute(self) -> float:
        self.env.process(self._main())
        self.env.run()
        return self.env.now

    def _main(self):
        # UVM keeps BigKernel's single-launch model: one kernel over the
        # whole dataset, paying the launch overhead exactly once
        yield self.env.timeout(self.gpu.spec.kernel_launch_overhead)
        self.comp_time += self.gpu.spec.kernel_launch_overhead
        for g in range(self.n_instances):
            pages = self.batches[g % self.n_batches]
            self.table.pin(pages)
            missing = self.table.missing(pages)
            if missing:
                self.fault_events += 1
                stall = self.spec.fault_latency * (1.0 - self.spec.overlap)
                start = self.env.now
                yield self.env.timeout(stall)
                self.fault_stall += self.env.now - start
                self.trace.record(
                    "cpu", FAULT_SERVICE, start, self.env.now,
                    chunk=g, pages=len(missing),
                )
                self._issue(g, missing, "demand", must=True)
                if self.mode == "readahead":
                    self.window = max(1, self.window // 2)
            elif self.mode == "readahead":
                self.window = min(self.window + 1, self.spec.max_window)
            self._issue_prefetches(g)
            waits = [self.inflight[p] for p in pages if p in self.inflight]
            if waits:
                yield self.env.all_of(waits)
            start = self.env.now
            yield self.env.timeout(self.comp_times[g % self.n_batches])
            self.comp_time += self.env.now - start
            self.trace.record("gpu", STAGE_COMPUTE, start, self.env.now, chunk=g)
            self.table.touch(pages, dirty=self.writes)
            if self.writes and g // self.n_batches == self.passes - 1:
                # eager asynchronous write-back right after the final pass
                # over this batch; only the tail remains at the barrier
                self._flush(self.table.take_dirty(pages))
            self.table.unpin(pages)
        if self.wb_events:
            yield self.env.all_of(self.wb_events)

    # -------------------------------------------------------- migrations
    def _issue(self, g: int, pages: list[int], kind: str, must: bool) -> bool:
        victims = self.table.admit(pages, must=must, kind=kind)
        if victims is None:
            return False
        self._flush([p for p, _, dirty in victims if dirty])
        proc = self.env.process(self._migrate(g, pages, kind))
        for p in pages:
            self.inflight[p] = proc
        return True

    def _migrate(self, g: int, pages: list[int], kind: str):
        events = [
            self.dma.copy_async(
                nbytes, direction=H2D, pinned=True,
                label=STAGE_TRANSFER, chunk=g, kind=kind, pages=count,
            )
            for _, count, nbytes in self.table.page_runs(pages)
        ]
        yield self.env.all_of(events)
        self.table.complete(pages)
        for p in pages:
            self.inflight.pop(p, None)

    def _flush(self, pages: list[int]) -> None:
        """Asynchronous dirty-page write-back (evictions and completion);
        no ``chunk`` meta — write-back is not a forward pipeline stage."""
        for _, count, nbytes in self.table.page_runs(pages):
            self.wb_events.append(
                self.dma.copy_async(
                    nbytes, direction=D2H, pinned=True,
                    label=STAGE_WRITEBACK_XFER, pages=count,
                )
            )

    # -------------------------------------------------------- prefetchers
    def _issue_prefetches(self, g: int) -> None:
        if self.mode == "none":
            # the driver's partial readahead: a slice of the *next* batch
            # rides along, sized by the hit fraction
            k = int(self.spec.prefetch_hit * self.batch_pages + 0.5)
            nxt = g + 1
            if (
                k > 0
                and nxt < self.n_instances
                and nxt // self.n_batches == g // self.n_batches
            ):
                want = self.table.missing(self.batches[nxt % self.n_batches])[:k]
                if want:
                    self._issue(nxt, want, "prefetch", must=False)
            return
        if self.mode == "readahead":
            window, cross = self.window, False
        else:  # learned
            window = self.spec.max_window
            # a recognized descriptor predicts the wrap back to the start,
            # so the window survives pass boundaries
            cross = self.learned_source in ("affine", "stride")
        # leave two batches of slack so demand admission stays feasible
        window = min(window, max(1, self.capacity_batches - 2))
        for d in range(1, window + 1):
            nxt = g + d
            if nxt >= self.n_instances:
                break
            if not cross and nxt // self.n_batches != g // self.n_batches:
                break
            want = self.table.missing(self.batches[nxt % self.n_batches])
            if want and not self._issue(nxt, want, "prefetch", must=False):
                break

    def _derive_learned_source(self, app: Application, data: AppData) -> str:
        """What evidence the pattern prefetcher trains on: a closed-form
        affine address stream when the kernel slices to one, an online
        stride recognition of the first chunk's reads otherwise, or plain
        access history (degrading to a same-pass window)."""
        from repro.kernelc.compile import affine_streams
        from repro.kernelc.slicing import make_addrgen_kernel
        from repro.runtime.pattern import PatternRecognizer

        kernel = app.kernel()
        if kernel is not None:
            try:
                streams = affine_streams(make_addrgen_kernel(kernel))
            except SlicingError:
                streams = None
            if streams is not None and streams[0] is not None:
                if streams[0].rec_stride > 0:
                    return "affine"
        offsets = app.chunk_read_offsets(data, 0, min(self.units, 64))
        pattern = PatternRecognizer().recognize([int(o) for o in offsets])
        if pattern is not None and pattern.cycle_span > 0:
            return "stride"
        return "history"


class GpuUvmEngine(Engine):
    """Fault-driven unified-memory execution (no explicit transfers)."""

    name = "gpu_uvm"
    display_name = "GPU Unified Memory"
    #: subclass hook: prefetch mode baked into the engine identity;
    #: None defers to ``EngineConfig.prefetch``
    default_prefetch: Optional[str] = None

    def __init__(
        self, spec: UvmSpec = UvmSpec(), prefetch: Optional[str] = None
    ):
        if prefetch is not None and prefetch not in PREFETCH_MODES:
            raise RuntimeConfigError(
                f"prefetch must be one of {PREFETCH_MODES}, got {prefetch!r}"
            )
        self.spec = spec
        self.prefetch = prefetch if prefetch is not None else self.default_prefetch

    @property
    def cache_key(self) -> str:
        return f"{self.name}[{self.prefetch or 'config'};{self.spec!r}]"

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        mode = self.prefetch if self.prefetch is not None else config.prefetch
        if mode not in PREFETCH_MODES:
            raise RuntimeConfigError(
                f"prefetch must be one of {PREFETCH_MODES}, got {mode!r}"
            )
        sim = _UvmSimulation(self.spec, mode, app, data, config)
        sim_time = sim.execute()

        output = None
        if config.functional:
            upc, _ = chunk_plan(
                sim.units, config.chunk_bytes, sim.profile.record_bytes
            )
            output = self._functional_output(app, data, app.chunk_bounds(data, upc))

        notes = {
            "pages": sim.table.n_pages,
            "page_bytes": self.spec.page_bytes,
            "prefetch": mode,
            "batch_pages": sim.batch_pages,
            "capacity_pages": sim.table.capacity_pages,
            "faults": sim.fault_events,
            "fault_stall": sim.fault_stall,
            "paging": sim.table.stats(),
        }
        if mode == "learned":
            notes["prefetch_source"] = sim.learned_source
        if sim.injector is not None:
            notes["fault_stats"] = sim.injector.stats()
        metrics = RunMetrics(
            n_chunks=sim.n_instances,
            bytes_h2d=sim.link.bytes_moved[H2D],
            bytes_d2h=sim.link.bytes_moved[D2H],
            comp_time=sim.comp_time,
            comm_time=(
                sim.trace.busy_time("pcie-h2d") + sim.trace.busy_time("pcie-d2h")
            ),
            kernel_launches=1,  # UVM keeps BigKernel's single-launch model
            notes=notes,
        )
        return RunResult(
            self.name, app.name, output, sim_time, metrics, trace=sim.trace
        )


class UvmReadaheadEngine(GpuUvmEngine):
    """UVM + adaptive sequential readahead prefetcher."""

    name = "uvm_readahead"
    display_name = "GPU UVM + Readahead Prefetch"
    default_prefetch = "readahead"


class UvmLearnedEngine(GpuUvmEngine):
    """UVM + pattern-descriptor ("learned") prefetcher."""

    name = "uvm_learned"
    display_name = "GPU UVM + Learned Prefetch"
    default_prefetch = "learned"
