"""CPU-based multithreaded implementation (all cores + hyperthreads)."""

from __future__ import annotations

from typing import Optional

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig, RunMetrics, RunResult
from repro.hw.cpu import CpuDevice


class CpuMtEngine(Engine):
    """The paper's multi-threaded CPU baseline.

    Work is record-partitioned across hardware threads; arithmetic scales
    with physical cores (at an efficiency factor), memory throughput is
    capped by the socket. Functionally identical to the serial run — the
    apps' kernels are record-independent, so partitioning commutes.
    """

    name = "cpu_mt"
    display_name = "CPU Multi-threaded"

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        profile = app.access_profile(data)
        totals = self.totals(app, data, profile)
        spec = config.hardware.cpu
        cpu = CpuDevice(spec)

        sim_time = cpu.mt_compute_time(
            n_ops=totals["cpu_ops"] * profile.passes,
            bytes_streamed=totals["data_bytes"] * profile.passes,
            threads=spec.threads,
        )
        # Functional path: partition into per-thread chunks to demonstrate
        # record independence (results must equal the serial run).
        n = app.n_units(data)
        per = max(1, -(-n // spec.threads))
        bounds = app.chunk_bounds(data, per)
        output = (
            self._functional_output(app, data, bounds) if config.functional else None
        )
        metrics = RunMetrics(
            n_chunks=len(bounds),
            comp_time=sim_time,
            comm_time=0.0,
            notes={"threads": spec.threads},
        )
        return RunResult(self.name, app.name, output, sim_time, metrics)
