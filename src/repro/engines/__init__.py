"""The five execution schemes the paper evaluates (Section VI):

1. :class:`CpuSerialEngine` — single-threaded CPU baseline (the speedup
   denominator of Fig. 4a).
2. :class:`CpuMtEngine` — multithreaded CPU baseline.
3. :class:`GpuSingleBufferEngine` — one staging buffer, transfers and
   kernels strictly serialized.
4. :class:`GpuDoubleBufferEngine` — two buffers, transfer of chunk *n+1*
   overlapped with computation of chunk *n* (the prior state of the art).
5. :class:`BigKernelEngine` — the paper's contribution, with feature flags
   matching the Section VI-B ablation (overlap only / + transfer-volume
   reduction / + memory coalescing) and a pattern-recognition switch for
   Table II.

All engines produce *functional* output through the same chunked kernel
path (validated equal across engines) and *temporal* results through the
hardware cost models on the simulated timeline.
"""

from repro.engines.base import Engine, EngineConfig, RunResult, RunMetrics
from repro.engines.cpu_serial import CpuSerialEngine
from repro.engines.cpu_mt import CpuMtEngine
from repro.engines.gpu_single import GpuSingleBufferEngine
from repro.engines.gpu_double import GpuDoubleBufferEngine
from repro.engines.bigkernel import BigKernelEngine, BigKernelFeatures
from repro.engines.multigpu import MultiGpuBigKernelEngine
from repro.engines.uvm import (
    GpuUvmEngine,
    UvmLearnedEngine,
    UvmReadaheadEngine,
    UvmSpec,
)

ALL_ENGINES = (
    CpuSerialEngine,
    CpuMtEngine,
    GpuSingleBufferEngine,
    GpuDoubleBufferEngine,
    BigKernelEngine,
)

#: the unified-memory competitor family (kept out of ALL_ENGINES so the
#: paper's five-scheme matrices — calibration pins, figure harnesses —
#: stay exactly as published; the UVM comparison has its own harness in
#: ``repro.bench.uvm``)
UVM_ENGINES = (
    GpuUvmEngine,
    UvmReadaheadEngine,
    UvmLearnedEngine,
)

__all__ = [
    "Engine",
    "EngineConfig",
    "RunResult",
    "RunMetrics",
    "CpuSerialEngine",
    "CpuMtEngine",
    "GpuSingleBufferEngine",
    "GpuDoubleBufferEngine",
    "BigKernelEngine",
    "BigKernelFeatures",
    "MultiGpuBigKernelEngine",
    "GpuUvmEngine",
    "UvmReadaheadEngine",
    "UvmLearnedEngine",
    "UvmSpec",
    "ALL_ENGINES",
    "UVM_ENGINES",
]
