"""The BigKernel execution scheme — the paper's contribution.

Drives the full mechanism: compiler slice (with the fall-back-to-all-data
path for unsliceable kernels), online pattern recognition sampled from the
app's *actual* per-thread address streams, per-block buffer allocation
under real pinned/GPU memory accounting, and the 4/6-stage pipeline on the
simulated timeline.

Feature flags reproduce the Section VI-B ablation:

* ``BigKernelFeatures.overlap_only()`` — pipelined execution only: all data
  transferred in its original layout.
* ``BigKernelFeatures.with_reduction()`` — + transfer only the bytes the
  computation needs (original relative layout, so no coalescing gain).
* ``BigKernelFeatures.full()`` — + assembly re-layout for coalesced GPU
  accesses (the complete system).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

import numpy as np

from repro.apps.base import AppData, Application, data_fingerprint
from repro.engines.base import Engine, EngineConfig, RunMetrics, RunResult
from repro.engines.gpu_common import (
    addr_gen_chunk_cost,
    chunk_plan,
    kernel_chunk_cost,
    original_access_pattern,
)
from repro.errors import PinnedMemoryExceeded, SlicingError
from repro.faults.inject import FaultInjector
from repro.faults.policies import degrade_buffer_plan
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.hw.gpu_memory import GpuMemoryAllocator
from repro.hw.pinned import PinnedAllocator
from repro.kernelc.slicing import make_addrgen_kernel
from repro.runtime.assembly import estimate_assembly_hit_rate
from repro.runtime.buffers import BlockBuffers, BufferConfig
from repro.runtime.fastpath import TemplatedChunks
from repro.runtime.pattern import (
    ADDRESS_BYTES,
    OnlineAddressTracker,
    PatternRecognizer,
    PATTERN_DESCRIPTOR_BYTES,
)
from repro.runtime.pipeline import (
    STAGE_ADDR_GEN,
    STAGE_ASSEMBLY,
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    STAGE_WRITEBACK_SCATTER,
    STAGE_WRITEBACK_XFER,
    ChunkWork,
    PipelineConfig,
    run_pipeline,
)
from repro.runtime.scheduler import ThreadLayout, plan_blocks

#: per-thread temp buffer for online pattern detection (addresses); the
#: paper keeps this in shared memory when it fits, GPU memory otherwise
PATTERN_TEMP_BUFFER = 128
#: longest per-thread stride cycle the recognizer searches for
PATTERN_MAX_PERIOD = 64
#: threads sampled per run for honest pattern detection
PATTERN_SAMPLE_THREADS = 4
#: addresses fed per sampled thread
PATTERN_SAMPLE_ADDRS = 2048


@dataclass(frozen=True)
class BigKernelFeatures:
    """Ablation switches (Fig. 5's three variants)."""

    reduce_volume: bool = True
    coalesce: bool = True

    @staticmethod
    def overlap_only() -> "BigKernelFeatures":
        return BigKernelFeatures(reduce_volume=False, coalesce=False)

    @staticmethod
    def with_reduction() -> "BigKernelFeatures":
        return BigKernelFeatures(reduce_volume=True, coalesce=False)

    @staticmethod
    def full() -> "BigKernelFeatures":
        return BigKernelFeatures(reduce_volume=True, coalesce=True)

    @property
    def label(self) -> str:
        if not self.reduce_volume and not self.coalesce:
            return "overlap-only"
        if self.reduce_volume and not self.coalesce:
            return "volume-reduction"
        if self.reduce_volume and self.coalesce:
            return "full"
        return "coalesce-only"


@dataclass
class BigKernelSchedule:
    """Resolved plan of one BigKernel run (before simulation).

    ``chunks`` is a :class:`~repro.runtime.fastpath.TemplatedChunks`: all
    full-size chunks of a run share one cost vector, so the plan stores
    the template (plus the ragged tail) instead of ``passes x n`` copies.
    It behaves as a sequence wherever a chunk list is expected.
    """

    chunks: "TemplatedChunks"
    pipe_cfg: PipelineConfig
    upc: int
    pattern_fraction: float
    pattern_on: bool
    sliceable: bool
    reduce_volume: bool
    active_blocks: int
    workers: int
    #: what the degradation policies gave up under an injected fault
    #: (``ring_shrunk_to``, ``blocks_shrunk_to``); empty on clean runs
    degradations: dict = dataclass_field(default_factory=dict)


class BigKernelEngine(Engine):
    """4/6-stage pipelined execution with prefetching (the paper's scheme)."""

    name = "bigkernel"
    display_name = "GPU BigKernel"

    #: compiler-slice outcomes keyed by app name — the slice depends only
    #: on the app's kernel IR, never on data or config (class-level: shared
    #: by every engine instance, including the Fig. 5 ablation variants)
    _slice_cache: dict = {}
    #: pattern-sampling results keyed by (dataset fingerprint, total
    #: threads, units per chunk) — everything the sampler reads
    _pattern_cache: "OrderedDict" = OrderedDict()
    _PATTERN_CACHE_MAX = 256
    #: buffer plans keyed by the config fields the planner reads
    _buffer_cache: "OrderedDict" = OrderedDict()
    _BUFFER_CACHE_MAX = 64
    _SCHEDULE_CACHE_MAX = 64

    def __init__(self, features: BigKernelFeatures = BigKernelFeatures.full()):
        self.features = features
        # full schedules keyed per instance (features are instance state)
        self._schedule_cache: OrderedDict = OrderedDict()
        #: template-reuse accounting: how often a run replayed a memoized
        #: schedule instead of re-planning (the serve layer reports this
        #: to prove cross-request TemplatedChunks amortization)
        self.schedule_hits = 0
        self.schedule_misses = 0

    @property
    def cache_key(self) -> str:
        return f"{self.name}:{self.features.label}"

    # ----------------------------------------------------------- helpers
    def _sliceable(self, app: Application, profile) -> bool:
        """Try the real compiler slice; fall back to the profile's claim."""
        kernel = app.kernel()
        if kernel is None:
            return profile.sliceable
        cached = self._slice_cache.get(app.name)
        if cached is None:
            try:
                make_addrgen_kernel(kernel)
                cached = True
            except SlicingError:
                cached = False
            self._slice_cache[app.name] = cached
        return cached

    def _sample_pattern_fraction(
        self,
        app: Application,
        data: AppData,
        config: EngineConfig,
        units_per_chunk: int,
    ) -> float:
        """Feed real per-thread address streams to the online tracker.

        Thread *t* of the first chunk owns a contiguous unit subrange
        (the ``myParticleStartIndex`` convention); its address stream is the
        app's read offsets over that subrange. Results are memoized on
        everything the sampler reads — the dataset instance, the thread
        count and the chunk geometry — so sweeps re-sample only when the
        geometry actually changes.
        """
        threads = config.total_compute_threads
        cache_key = (data_fingerprint(data), threads, units_per_chunk)
        if cache_key in self._pattern_cache:
            self._pattern_cache.move_to_end(cache_key)
            return self._pattern_cache[cache_key]
        n_units = app.n_units(data)
        first_chunk_units = min(units_per_chunk, n_units)
        per_thread = max(1, first_chunk_units // threads)
        # per-period evidence (two full cycles) is enforced inside
        # recognize(); the floor only guards against trivial samples
        recognizer = PatternRecognizer(max_period=PATTERN_MAX_PERIOD, min_samples=8)
        hits = 0
        sampled = 0
        for t in range(min(PATTERN_SAMPLE_THREADS, threads)):
            lo = t * per_thread
            hi = min(lo + per_thread, first_chunk_units)
            if hi <= lo:
                break
            offsets = app.chunk_read_offsets(data, lo, hi)
            # a cycle needs two full periods of evidence; short per-chunk
            # spans sample a longer stretch of the thread's stream
            while offsets.size < 2 * PATTERN_MAX_PERIOD + 2 and hi < n_units:
                hi = min(hi + per_thread + 1, n_units)
                offsets = app.chunk_read_offsets(data, lo, hi)
            if offsets.size == 0:
                continue
            tracker = OnlineAddressTracker(
                recognizer, temp_buffer=PATTERN_TEMP_BUFFER
            )
            tracker.feed_many(offsets[:PATTERN_SAMPLE_ADDRS].tolist())
            tracker.finish()
            hits += int(tracker.has_pattern)
            sampled += 1
        fraction = hits / sampled if sampled else 0.0
        self._pattern_cache[cache_key] = fraction
        if len(self._pattern_cache) > self._PATTERN_CACHE_MAX:
            self._pattern_cache.popitem(last=False)
        return fraction

    def _allocate_buffers(
        self, config: EngineConfig, writes: bool
    ) -> tuple[int, BufferConfig, dict]:
        """Plan active blocks and allocate their buffer sets for real.

        The plan depends only on hardware, buffer geometry and any pinned
        fault plan, so it is memoized on exactly those fields; a cache hit
        skips re-running the pinned/GPU allocator exercise.

        Under injected pinned-memory pressure (``faults.pinned.deny``) the
        degradation policy shrinks the ring toward depth 2 and then the
        active-block count until the set fits; the returned dict records
        what was given up. When nothing fits,
        :class:`~repro.errors.PinnedMemoryExceeded` propagates and
        :meth:`run` falls back to plain double-buffering."""
        cache_key = (
            config.hardware,
            config.chunk_bytes,
            config.num_blocks,
            config.compute_threads,
            config.ring_depth,
            writes,
            config.faults,
        )
        if cache_key in self._buffer_cache:
            self._buffer_cache.move_to_end(cache_key)
            return self._buffer_cache[cache_key]
        gpu_dev = GpuDevice(config.hardware.gpu)
        layout = ThreadLayout(compute_threads=config.compute_threads)
        per_block = max(4096, config.chunk_bytes // config.num_blocks)
        buf_cfg = BufferConfig(
            data_buf_bytes=per_block,
            addr_buf_entries=max(64, per_block // 4),
            instances=config.ring_depth,
            write_buf_bytes=per_block // 4 if writes else 0,
        )
        plan = plan_blocks(gpu_dev, layout, buf_cfg, config.num_blocks)
        active_blocks = plan.active_blocks
        pinned_limit = config.hardware.cpu.dram_bytes // 2
        deny = (
            config.faults.pinned_deny_after() if config.faults is not None else None
        )
        degradations: dict = {}
        if deny is not None:
            buf_cfg, active_blocks, degradations = degrade_buffer_plan(
                buf_cfg, active_blocks, min(pinned_limit, deny)
            )
        pinned = PinnedAllocator(pinned_limit, deny_after_bytes=deny)
        gpu_mem = GpuMemoryAllocator(config.hardware.gpu.global_mem_bytes)
        blocks = [BlockBuffers(b, buf_cfg) for b in range(active_blocks)]
        for bb in blocks:
            bb.allocate(pinned, gpu_mem)
        for bb in blocks:
            bb.release(pinned, gpu_mem)
        self._buffer_cache[cache_key] = (active_blocks, buf_cfg, degradations)
        if len(self._buffer_cache) > self._BUFFER_CACHE_MAX:
            self._buffer_cache.popitem(last=False)
        return active_blocks, buf_cfg, degradations

    # ----------------------------------------------------------- schedule
    def _schedule(
        self,
        app: Application,
        data: AppData,
        config: EngineConfig,
        units: Optional[int] = None,
        workers_override: Optional[int] = None,
    ) -> "BigKernelSchedule":
        """Build the chunk schedule and pipeline config for ``units`` units
        (defaults to the whole dataset). Exposed so layered engines (e.g.
        the multi-GPU extension) can plan per-shard schedules with their
        own CPU-worker budgets.

        Schedules are memoized per engine instance, keyed by the app, the
        dataset fingerprint and every config field the plan reads
        (``fastpath``/``functional`` deliberately excluded — they do not
        change the plan), so repeated runs — the fastpath-vs-DES oracle,
        cached sweeps, the run matrix — plan once.
        """
        cache_key = (
            app.name,
            data_fingerprint(data),
            units,
            workers_override,
            config.hardware,
            config.chunk_bytes,
            config.num_blocks,
            config.compute_threads,
            config.ring_depth,
            config.pattern_recognition,
            config.faults,
        )
        if cache_key in self._schedule_cache:
            self._schedule_cache.move_to_end(cache_key)
            self.schedule_hits += 1
            return self._schedule_cache[cache_key]
        self.schedule_misses += 1
        hw = config.hardware
        profile = app.access_profile(data)
        totals = self.totals(app, data, profile)
        gpu = GpuDevice(hw.gpu)
        cpu = CpuDevice(hw.cpu)

        sliceable = self._sliceable(app, profile)
        reduce_volume = self.features.reduce_volume and sliceable
        payload_per_unit = (
            profile.read_bytes_per_record if reduce_volume else profile.record_bytes
        )
        units = totals["units"] if units is None else units
        upc, _ = chunk_plan(units, config.chunk_bytes, payload_per_unit)

        # Pattern recognition on real address streams (Table II's switch).
        pattern_fraction = 0.0
        if config.pattern_recognition and profile.pattern_friendly is not None:
            pattern_fraction = self._sample_pattern_fraction(app, data, config, upc)
        pattern_on = config.pattern_recognition and pattern_fraction >= 0.5

        active_blocks, buf_cfg, degradations = self._allocate_buffers(
            config, app.writes_mapped
        )
        workers = (
            workers_override
            if workers_override is not None
            else min(active_blocks, hw.cpu.threads)
        )
        threads = config.total_compute_threads
        sync_overhead = gpu.flag_wait_overhead(2) + 2 * hw.gpu.global_latency

        def chunk_costs(u: int) -> ChunkWork:
            """Stage costs of one chunk covering ``u`` units (index 0)."""
            raw = u * profile.record_bytes
            emitted = u * profile.emitted_addresses_per_record
            read_bytes = u * profile.read_bytes_per_record
            payload = u * payload_per_unit

            # Stage 1: address generation (+ address shipping when no
            # pattern compresses the stream).
            t_ag = gpu.stage_time(addr_gen_chunk_cost(profile, u), threads)
            if not reduce_volume or pattern_on:
                # A verified pattern (or the degenerate whole-range
                # slice) sends one tiny descriptor per thread for the
                # entire run — amortized to nothing per chunk.
                addr_d2h = 0
            else:
                addr_d2h = int(emitted * ADDRESS_BYTES)

            # Stage 2: data assembly.
            if not reduce_volume:
                # No gathering: plain staging copy, parallel across the
                # per-block CPU threads.
                t_asm = cpu.staging_copy_time(raw) / (workers * hw.cpu.mt_efficiency)
                t_asm = max(t_asm, 2.0 * raw / hw.cpu.mem_bandwidth)
            else:
                hit = estimate_assembly_hit_rate(
                    elem_bytes=profile.elem_bytes,
                    record_bytes=int(max(profile.record_bytes, 1)),
                    threads=threads,
                    chunk_bytes=int(raw),
                    cpu=hw.cpu,
                    locality_opt=pattern_on,
                    reads_per_record=profile.reads_per_record,
                )
                # A recognized pattern exposes contiguous runs the
                # gather loop copies whole; without one, every emitted
                # address is a separate address-driven copy.
                if pattern_on:
                    accesses = read_bytes / profile.gather_run_bytes
                else:
                    accesses = emitted
                per_thread_t = cpu.assembly_time(
                    n_elements=emitted,
                    elem_bytes=read_bytes / max(emitted, 1e-9),
                    hit_rate=hit,
                    address_driven=not pattern_on,
                    n_accesses=accesses,
                )
                t_asm = per_thread_t / (workers * hw.cpu.mt_efficiency)
                t_asm = max(t_asm, 2.0 * read_bytes / hw.cpu.mem_bandwidth)

            # Stage 4: computation on the (re)laid-out buffer.
            coalesced = self.features.coalesce and reduce_volume
            cost = kernel_chunk_cost(profile, u, coalesced=coalesced)
            t_comp = gpu.stage_time(cost, threads)

            # Stages 5-6: mapped writes.
            wb = u * profile.write_bytes_per_record
            t_scatter = 0.0
            if wb > 0:
                w_elem = profile.write_bytes_per_record / max(
                    profile.writes_per_record, 1e-9
                )
                t_scatter = cpu.scatter_time(
                    u * profile.writes_per_record, w_elem, hit_rate=0.9
                ) / (workers * hw.cpu.mt_efficiency)

            return ChunkWork(
                index=0,
                t_addr_gen=t_ag,
                addr_bytes_d2h=int(addr_d2h),
                t_assembly=t_asm,
                xfer_bytes=int(payload),
                t_compute=t_comp,
                write_bytes=int(wb),
                t_scatter=t_scatter,
                # each block's buffer set is its own DMA; assembly
                # threads issue one consolidated copy per worker
                xfer_segments=workers,
            )

        # Every full-size chunk shares one cost vector: price the template
        # once, the ragged tail once, and keep the sequence lazy.
        n_full, rem = divmod(units, upc)
        if rem == 0:
            chunks = TemplatedChunks(
                chunk_costs(upc), n_full, None, passes=profile.passes
            )
        elif n_full == 0:
            chunks = TemplatedChunks(
                chunk_costs(rem), 1, None, passes=profile.passes
            )
        else:
            chunks = TemplatedChunks(
                chunk_costs(upc), n_full, chunk_costs(rem), passes=profile.passes
            )

        pipe_cfg = PipelineConfig(
            # the ring may have been shrunk by the degradation policy;
            # clean runs keep buf_cfg.instances == config.ring_depth
            ring_depth=buf_cfg.instances,
            cpu_workers=2,  # aggregate stage times are pre-divided by workers
            sync_overhead=sync_overhead,
        )
        sched = BigKernelSchedule(
            chunks=chunks,
            pipe_cfg=pipe_cfg,
            upc=upc,
            pattern_fraction=pattern_fraction,
            pattern_on=pattern_on,
            sliceable=sliceable,
            reduce_volume=reduce_volume,
            active_blocks=active_blocks,
            workers=workers,
            degradations=degradations,
        )
        self._schedule_cache[cache_key] = sched
        if len(self._schedule_cache) > self._SCHEDULE_CACHE_MAX:
            self._schedule_cache.popitem(last=False)
        return sched

    # --------------------------------------------------------------- run
    def run_batch(
        self,
        app: Application,
        data: AppData,
        configs: list[EngineConfig],
    ) -> list[RunResult]:
        """Batch entry: share functional outputs across the batch.

        The functional pass (the NumPy kernel over the whole dataset) is
        the dominant cost of a cached-schedule run, and it depends only on
        the chunk bounds — i.e. on ``units_per_chunk`` — never on the
        pipeline geometry. Batch members whose schedules resolve to the
        same ``upc`` therefore share one functional output: the first
        member computes it, later members run timing-only and attach the
        very same object, which makes bit-equality to the one-shot run
        trivially exact. Timing, metrics and traces are untouched — they
        come from the normal :meth:`run` path either way.
        """
        if type(self) is not BigKernelEngine:
            # subclasses (the multi-GPU shard engine) plan per shard; the
            # whole-dataset upc is not their sharing key — stay sequential
            return super().run_batch(app, data, configs)
        outputs: dict[int, object] = {}
        results = []
        for cfg in configs:
            if not cfg.functional:
                results.append(self.run(app, data, cfg))
                continue
            try:
                upc = self._schedule(app, data, cfg).upc
            except PinnedMemoryExceeded:
                # degraded/fallback runs plan differently — no sharing
                results.append(self.run(app, data, cfg))
                continue
            if upc in outputs:
                res = self.run(app, data, cfg.with_(functional=False))
                res.output = outputs[upc]
                res.metrics.notes["batch_shared_output"] = True
                results.append(res)
            else:
                res = self.run(app, data, cfg)
                outputs[upc] = res.output
                results.append(res)
        return results

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        hw = config.hardware
        gpu = GpuDevice(hw.gpu)
        try:
            sched = self._schedule(app, data, config)
        except PinnedMemoryExceeded as exc:
            if config.faults is not None and config.faults.active():
                # last degradation rung: even the minimum plan (two-deep
                # ring, one block) does not fit under the injected pinned
                # pressure — fall back to plain double-buffering, which
                # needs no pinned prefetch/address buffers (the paper's
                # fall-back-to-all-data spirit, applied to memory pressure)
                from repro.engines.gpu_double import GpuDoubleBufferEngine

                fallback = GpuDoubleBufferEngine().run(app, data, config)
                fallback.metrics.notes["degraded_from"] = self.name
                fallback.metrics.notes["degraded_reason"] = (
                    f"pinned-memory-pressure: {exc}"
                )
                return fallback
            raise
        chunks, upc = sched.chunks, sched.upc
        pattern_fraction, pattern_on = sched.pattern_fraction, sched.pattern_on
        sliceable, reduce_volume = sched.sliceable, sched.reduce_volume
        active_blocks, workers = sched.active_blocks, sched.workers

        injector = None
        if config.faults is not None and config.faults.active():
            injector = FaultInjector(config.faults)
        result = run_pipeline(
            hw, chunks, sched.pipe_cfg, fastpath=config.fastpath, faults=injector
        )
        # BigKernel launches ONE kernel for the whole computation.
        sim_time = result.total_time + gpu.spec.kernel_launch_overhead

        output = None
        if config.functional:
            bounds = app.chunk_bounds(data, upc)
            output = self._functional_output(app, data, bounds)
        comm = (
            result.stage_totals.get(STAGE_TRANSFER, 0.0)
            + result.stage_totals.get(STAGE_WRITEBACK_XFER, 0.0)
        )
        metrics = RunMetrics(
            n_chunks=len(chunks),
            bytes_h2d=result.bytes_h2d,
            bytes_d2h=result.bytes_d2h,
            comp_time=result.stage_totals.get(STAGE_COMPUTE, 0.0),
            comm_time=comm,
            stage_totals=result.stage_totals,
            pattern_fraction=pattern_fraction,
            kernel_launches=1,
            notes={
                "features": self.features.label,
                "sliceable": sliceable,
                "reduce_volume": reduce_volume,
                "pattern_on": pattern_on,
                "active_blocks": active_blocks,
                "units_per_chunk": upc,
                "workers": workers,
            },
        )
        if sched.degradations:
            metrics.notes["degradations"] = dict(sched.degradations)
        if injector is not None:
            metrics.notes["fault_stats"] = injector.stats()
        return RunResult(
            self.name, app.name, output, sim_time, metrics, trace=result.trace
        )
