"""GPU double-buffering implementation — the prior state of the art.

Two staging/device buffer pairs: while the kernel consumes buffer A, the
host stages and DMAs chunk *n+1* into buffer B. Scheduling runs on the
same simulated pipeline machinery as BigKernel, with the address-generation
stage empty and the "assembly" stage being the plain staging memcpy —
which is exactly what double-buffering is: BigKernel minus prefetching,
minus volume reduction, minus re-layout.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig, RunMetrics, RunResult
from repro.engines.gpu_common import chunk_plan, kernel_chunk_cost
from repro.faults.inject import FaultInjector
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.runtime.fastpath import TemplatedChunks
from repro.runtime.pipeline import (
    STAGE_ASSEMBLY,
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    STAGE_WRITEBACK_SCATTER,
    STAGE_WRITEBACK_XFER,
    ChunkWork,
    PipelineConfig,
    run_pipeline,
)


class GpuDoubleBufferEngine(Engine):
    """Chunked execution with transfer/compute overlap (2 buffers)."""

    name = "gpu_double"
    display_name = "GPU Double Buffer"

    def run(
        self,
        app: Application,
        data: AppData,
        config: Optional[EngineConfig] = None,
    ) -> RunResult:
        config = config or EngineConfig()
        hw = config.hardware
        profile = app.access_profile(data)
        totals = self.totals(app, data, profile)
        gpu = GpuDevice(hw.gpu)
        cpu = CpuDevice(hw.cpu)

        units = totals["units"]
        upc, _ = chunk_plan(units, config.chunk_bytes, profile.record_bytes)
        threads = config.total_compute_threads

        def chunk_costs(u: int) -> ChunkWork:
            raw = u * profile.record_bytes
            cost = kernel_chunk_cost(profile, u, coalesced=False)
            t_comp = gpu.stage_time(cost, threads) + gpu.spec.kernel_launch_overhead
            wb = u * profile.write_bytes_per_record
            return ChunkWork(
                index=0,
                t_addr_gen=0.0,
                addr_bytes_d2h=0,
                t_assembly=cpu.staging_copy_time(raw),
                xfer_bytes=int(raw),
                t_compute=t_comp,
                write_bytes=int(wb),
                t_scatter=cpu.staging_copy_time(wb) if wb > 0 else 0.0,
            )

        # One cost vector for every full chunk, one for the ragged tail.
        n_full, rem = divmod(units, upc)
        if rem == 0:
            chunks = TemplatedChunks(chunk_costs(upc), n_full, None, profile.passes)
        elif n_full == 0:
            chunks = TemplatedChunks(chunk_costs(rem), 1, None, profile.passes)
        else:
            chunks = TemplatedChunks(
                chunk_costs(upc), n_full, chunk_costs(rem), profile.passes
            )

        injector = None
        if config.faults is not None and config.faults.active():
            injector = FaultInjector(config.faults)
        result = run_pipeline(
            hw,
            chunks,
            PipelineConfig(ring_depth=2, cpu_workers=1),
            fastpath=config.fastpath,
            faults=injector,
        )
        sim_time = result.total_time

        output = None
        if config.functional:
            bounds = app.chunk_bounds(data, upc)
            output = self._functional_output(app, data, bounds)
        comm = (
            result.stage_totals.get(STAGE_ASSEMBLY, 0.0)
            + result.stage_totals.get(STAGE_TRANSFER, 0.0)
            + result.stage_totals.get(STAGE_WRITEBACK_XFER, 0.0)
            + result.stage_totals.get(STAGE_WRITEBACK_SCATTER, 0.0)
        )
        metrics = RunMetrics(
            n_chunks=len(chunks),
            bytes_h2d=result.bytes_h2d,
            bytes_d2h=result.bytes_d2h,
            comp_time=result.stage_totals.get(STAGE_COMPUTE, 0.0),
            comm_time=comm,
            stage_totals=result.stage_totals,
            kernel_launches=len(chunks),
            notes={"units_per_chunk": upc},
        )
        if injector is not None:
            metrics.notes["fault_stats"] = injector.stats()
        return RunResult(
            self.name, app.name, output, sim_time, metrics, trace=result.trace
        )
