"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's surfaces:

* ``apps`` — list the benchmark applications and their Table I profile;
* ``run`` — one app on one (or all) execution scheme(s);
* ``fig4a`` / ``fig4b`` / ``fig5`` / ``fig6`` / ``table1`` / ``table2`` —
  regenerate one paper artifact;
* ``hw`` — print the simulated testbed;
* ``trace`` — run BigKernel on an app and dump a Chrome-trace timeline;
* ``verify`` — invariant + differential + fuzz verification sweep
  (see ``docs/verification.md``); ``--fastpath`` adds the analytic-vs-DES
  differential; exits nonzero on any violation;
* ``chaos`` — fault-injection sweep: the app x engine matrix under a
  seeded fault grid, with differential + invariant verification per cell
  (see ``docs/faults.md``); ``--jobs``/``--backend`` parallelize the
  blocks without changing the fingerprint; exits nonzero on any failing
  cell;
* ``bench`` — competitor comparison: BigKernel vs the unified-memory
  engine family (plain / readahead / learned prefetch) on the paper's six
  apps (see ``docs/engines.md``);
* ``sweep`` — autotune one engine/app pair over the default grid, with
  ``--jobs``/``--backend`` for parallel evaluation and a persistent run
  cache (see ``docs/performance.md``);
* ``serve`` — multi-tenant serving: replay a seeded open-loop request
  trace through the admission queue + WDRR scheduler + batched
  dispatcher, with cache short-circuit and cross-job template reuse
  (see ``docs/serving.md``); ``--verify`` oracle-checks every response;
  exits nonzero on verification failure.
"""

from __future__ import annotations

import argparse
import sys

from repro.units import MiB, fmt_bandwidth, fmt_bytes, fmt_time


def _settings(args):
    from repro.bench import BenchSettings
    from repro.engines import EngineConfig

    return BenchSettings(
        data_bytes=args.data_mib * MiB,
        seed=args.seed,
        config=EngineConfig(chunk_bytes=args.chunk_kib * 1024),
    )


def _add_common(p):
    p.add_argument("--data-mib", type=int, default=16, help="dataset size (MiB)")
    p.add_argument("--chunk-kib", type=int, default=2048, help="chunk payload (KiB)")
    p.add_argument("--seed", type=int, default=7, help="data generator seed")


def cmd_apps(args) -> int:
    from repro.apps import ALL_APPS
    from repro.bench.report import render_table

    rows = []
    for cls in ALL_APPS:
        app = cls()
        data = app.generate(n_bytes=2 * MiB, seed=0)
        p = app.access_profile(data)
        rows.append(
            [
                app.name,
                app.display_name,
                fmt_bytes(app.paper_data_bytes) + " (paper)",
                f"{p.read_fraction * 100:.0f}%",
                f"{p.write_fraction * 100:.0f}%",
                "var" if p.variable_length else "fixed",
                p.passes,
            ]
        )
    print(render_table(
        ["name", "application", "paper size", "read", "modified", "records", "passes"],
        rows,
    ))
    return 0


def cmd_run(args) -> int:
    from repro.apps import get_app
    from repro.bench.report import render_table
    from repro.engines import ALL_ENGINES, UVM_ENGINES

    app = get_app(args.app)
    data = app.generate(n_bytes=args.data_mib * MiB, seed=args.seed)
    settings = _settings(args)
    engines = [cls() for cls in ALL_ENGINES]
    if args.engine in {cls.name for cls in UVM_ENGINES}:
        # the UVM family stays out of the default five-scheme table but is
        # runnable by name, next to the serial baseline for a speedup ref
        engines = [engines[0]] + [
            cls() for cls in UVM_ENGINES if cls.name == args.engine
        ]
    elif args.engine != "all":
        engines = [e for e in engines if e.name == args.engine]
        if not engines:
            print(f"unknown engine {args.engine!r}", file=sys.stderr)
            return 2
    results = [e.run(app, data, settings.config) for e in engines]
    for r in results[1:]:
        if not app.outputs_equal(results[0].output, r.output):
            print(f"OUTPUT MISMATCH in {r.engine}", file=sys.stderr)
            return 1
    base = results[0].sim_time
    rows = [
        [r.engine, fmt_time(r.sim_time), f"{base / r.sim_time:.2f}x",
         fmt_bytes(r.metrics.bytes_h2d), r.metrics.n_chunks]
        for r in results
    ]
    print(render_table(
        ["scheme", "sim time", f"vs {results[0].engine}", "h2d", "chunks"],
        rows,
        title=f"{app.display_name}: {fmt_bytes(data.total_mapped_bytes)} mapped",
    ))
    return 0


def cmd_figure(args) -> int:
    from repro.bench import fig4a, fig4b, fig5, fig6, table1, table2

    fn = {
        "fig4a": fig4a,
        "fig4b": fig4b,
        "fig5": fig5,
        "fig6": fig6,
        "table1": table1,
        "table2": table2,
    }[args.command]
    print(fn(_settings(args)).text)
    return 0


def cmd_hw(args) -> int:
    from repro.hw.spec import DEFAULT_HARDWARE as hw

    print(f"GPU:  {hw.gpu.name}")
    print(f"      {hw.gpu.num_sms} SMs x {hw.gpu.cores_per_sm} cores @ "
          f"{hw.gpu.clock_hz / 1e6:.0f} MHz, {fmt_bytes(hw.gpu.global_mem_bytes)} "
          f"global memory @ {fmt_bandwidth(hw.gpu.mem_bandwidth)}")
    print(f"CPU:  {hw.cpu.name}")
    print(f"      {hw.cpu.cores} cores / {hw.cpu.threads} threads @ "
          f"{hw.cpu.clock_hz / 1e9:.1f} GHz, {fmt_bytes(hw.cpu.cache_bytes)} cache, "
          f"{fmt_bandwidth(hw.cpu.mem_bandwidth)} socket bandwidth")
    print(f"Link: {hw.pcie.name}: {fmt_bandwidth(hw.pcie.raw_bandwidth)} raw "
          f"({fmt_bandwidth(hw.pcie.pinned_bandwidth)} pinned, "
          f"{fmt_bandwidth(hw.pcie.pageable_bandwidth)} pageable), "
          f"{hw.pcie.latency * 1e6:.0f} us DMA setup")
    return 0


def cmd_trace(args) -> int:
    from repro.apps import get_app
    from repro.engines import BigKernelEngine

    app = get_app(args.app)
    data = app.generate(n_bytes=args.data_mib * MiB, seed=args.seed)
    # a trace dump needs the full timeline: force the DES (the analytic
    # fast path records no intervals)
    cfg = _settings(args).config.with_(fastpath=False)
    res = BigKernelEngine().run(app, data, cfg)
    assert res.trace is not None
    res.trace.dump_chrome_trace(args.out)
    if args.gantt:
        from repro.bench.report import render_gantt

        print(render_gantt(res.trace))
    print(f"wrote {len(res.trace)} intervals over {fmt_time(res.sim_time)} "
          f"to {args.out} (open in Perfetto / chrome://tracing)")
    return 0


def cmd_verify(args) -> int:
    from repro.verify import run_verify

    summary = run_verify(
        quick=args.quick,
        seed=args.seed,
        data_bytes=args.data_mib * MiB if args.data_mib else None,
        fuzz_iterations=args.fuzz_iters,
        fastpath=args.fastpath,
        compiled=args.compiled,
        analytic=args.analytic,
        multigpu=args.multigpu,
        serve=args.serve,
    )
    print(summary.summary())
    return 0 if summary.ok else 1


def cmd_chaos(args) -> int:
    from repro.faults import run_chaos

    report = run_chaos(
        quick=args.quick,
        seed=args.seed,
        data_bytes=args.data_mib * MiB if args.data_mib else None,
        jobs=args.jobs,
        backend=args.backend,
        serve=args.serve,
    )
    print(report.summary())
    print(f"fingerprint: {report.fingerprint()}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def cmd_bench(args) -> int:
    from repro.bench.uvm import run_uvm_comparison

    if args.gpus:
        return _cmd_bench_multigpu(args)
    comparison = run_uvm_comparison(
        data_bytes=args.data_mib * MiB,
        seed=args.seed,
        jobs=args.jobs,
        backend=args.backend,
    )
    print(comparison.summary())
    wins = sum(
        1
        for app in comparison.apps
        if comparison.sim_time(app, "bigkernel")
        < comparison.sim_time(app, comparison.best_uvm(app))
    )
    print(
        f"bigkernel beats the best unified-memory variant on "
        f"{wins}/{len(comparison.apps)} apps"
    )
    return 0


def _cmd_bench_multigpu(args) -> int:
    from repro.bench.multigpu import run_multigpu_scaling

    try:
        gpu_counts = tuple(int(tok) for tok in args.gpus.split(","))
    except ValueError:
        print(f"--gpus expects a comma-separated list of counts: {args.gpus!r}")
        return 2
    scaling = run_multigpu_scaling(
        data_bytes=args.data_mib * MiB,
        seed=args.seed,
        gpu_counts=gpu_counts,
        shared_link=args.shared_link,
        jobs=args.jobs,
        backend=args.backend,
    )
    print(scaling.summary())
    worst = max(
        scaling.prediction_rel_err(app, n)
        for app in scaling.apps
        for n in scaling.gpu_counts
    )
    print(
        f"analytic shard model vs DES: worst relative error "
        f"{worst:.2e} over {len(scaling.apps) * len(scaling.gpu_counts)} cells"
    )
    return 0


def cmd_sweep(args) -> int:
    from repro.apps import get_app
    from repro.bench.report import render_table
    from repro.bench.sweep import DEFAULT_GRID, autotune
    from repro.engines import ALL_ENGINES, UVM_ENGINES

    app = get_app(args.app)
    data = app.generate(n_bytes=args.data_mib * MiB, seed=args.seed)
    engine = None
    for cls in ALL_ENGINES + UVM_ENGINES:
        e = cls()
        if e.name == args.engine:
            engine = e
            break
    if engine is None:
        print(f"unknown engine {args.engine!r}", file=sys.stderr)
        return 2
    if args.points and args.mode == "analytic":
        return _analytic_scan(args, engine, app, data)
    best_cfg, res = autotune(
        engine,
        app,
        data,
        base_config=_settings(args).config,
        jobs=args.jobs,
        cache=True,
        backend=args.backend,
        mode=args.mode,
        top_k=args.top_k,
    )
    rows = [
        [
            fmt_bytes(p.params.get("chunk_bytes", best_cfg.chunk_bytes)),
            p.params.get("num_blocks", best_cfg.num_blocks),
            fmt_time(p.sim_time),
            "<-- best" if p.params == res.best.params else "",
        ]
        for p in res.points
    ]
    print(render_table(
        ["chunk", "blocks", "sim time", ""],
        rows,
        title=f"{engine.display_name} x {app.display_name}: "
              f"{len(res.points)}-point sweep (jobs={args.jobs})",
    ))
    print(f"best: chunk_bytes={fmt_bytes(best_cfg.chunk_bytes)} "
          f"num_blocks={best_cfg.num_blocks}")
    if args.spot_check and args.mode == "analytic":
        return _spot_check(engine, app, data, best_cfg, res.best.sim_time)
    return 0


def _spot_check(engine, app, data, cfg, predicted: float) -> int:
    """DES-simulate one predicted optimum; nonzero exit beyond tolerance."""
    from repro.verify.differential import ANALYTIC_TOL

    res = engine.run(app, data, cfg.with_(functional=False))
    rel = abs(predicted - res.sim_time) / max(abs(res.sim_time), 1e-300)
    ok = rel <= ANALYTIC_TOL
    print(f"spot check: DES says {fmt_time(res.sim_time)} "
          f"(predicted {fmt_time(predicted)}, rel err {rel:.2e}, "
          f"tol {ANALYTIC_TOL:g}: {'ok' if ok else 'FAIL'})")
    return 0 if ok else 1


def _analytic_scan(args, engine, app, data) -> int:
    import time

    from repro.analytic import predict_grid, suggest_grid

    base = _settings(args).config
    grid = suggest_grid(args.points)
    t0 = time.perf_counter()
    gp = predict_grid(app, data, grid, base, engine=engine)
    elapsed = time.perf_counter() - t0
    best = gp.best_params()
    print(f"{engine.display_name} x {app.display_name}: analytic scan of "
          f"{gp.n_points:,} configurations in {elapsed:.2f} s "
          f"({gp.n_points / max(elapsed, 1e-9):,.0f} points/s)")
    print("best: " + " ".join(f"{k}={v}" for k, v in sorted(best.items()))
          + f"  predicted {fmt_time(gp.best_time())}")
    if args.spot_check:
        return _spot_check(engine, app, data, gp.config_at(gp.argbest()),
                           gp.best_time())
    return 0


def cmd_serve(args) -> int:
    import json

    from repro.errors import ReproError
    from repro.serve import (
        DEFAULT_TENANTS,
        ServeConfig,
        Server,
        TenantSpec,
        TraceSpec,
        generate_trace,
        serve_trace,
        with_slo,
    )

    if args.tenants:
        try:
            tenants = tuple(
                TenantSpec(
                    name.strip(), float(weight) if sep else 1.0
                )
                for name, sep, weight in (
                    tok.partition("=") for tok in args.tenants.split(",")
                )
            )
        except (ValueError, ReproError) as exc:
            print(f"bad --tenants {args.tenants!r}: {exc}", file=sys.stderr)
            return 2
    else:
        tenants = DEFAULT_TENANTS
    if args.slo:
        if args.slo < 0:
            print(f"bad --slo {args.slo!r}: must be positive", file=sys.stderr)
            return 2
        tenants = with_slo(tenants, args.slo)

    spec = TraceSpec(
        seed=args.seed,
        duration=args.duration,
        rate=args.rate,
        tenants=tenants,
        data_bytes=args.data_mib * MiB,
    )
    trace = generate_trace(spec)
    config = ServeConfig(
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        cache=not args.no_cache,
        disk_cache=args.disk_cache,
        verify=args.verify,
        jobs=args.jobs,
        backend=args.backend,
        scheduling=args.scheduling,
        adaptive_batch=args.adaptive_batch,
    )
    print(
        f"serving {len(trace)} requests over {spec.duration:g}s "
        f"({spec.rate:g}/s offered) from {len(tenants)} tenant(s), "
        f"backend={config.backend} jobs={config.jobs} "
        f"scheduling={config.scheduling}"
        + (f" slo={args.slo:g}ms" if args.slo else "")
    )
    with Server(config, tenants=tenants) as server:
        outcome = serve_trace(server, trace)
    print(outcome.summary())
    if args.trace_out:
        log = [
            {
                "req_id": r.req_id,
                "tenant": r.tenant,
                "status": r.status,
                "arrival": r.arrival,
                "dispatch": r.dispatch,
                "completion": r.completion,
                "batch_id": r.batch_id,
                "error": r.error,
            }
            for r in outcome.responses
        ]
        with open(args.trace_out, "w") as fh:
            json.dump(log, fh, indent=2)
        print(f"wrote {len(log)} responses to {args.trace_out}")
    metrics = outcome.metrics
    if metrics.verify_failures:
        print(
            f"{metrics.verify_failures} response(s) diverged from their "
            f"one-shot oracle",
            file=sys.stderr,
        )
        return 1
    if args.expect_cache_hits and metrics.cached == 0:
        print("expected cache hits but the run cache never hit",
              file=sys.stderr)
        return 1
    if args.slo and not metrics.slo_total:
        print("--slo was set but no request carried a deadline",
              file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    from repro.analytic import run_report

    print(run_report(
        args.app,
        data_bytes=args.data_mib * MiB,
        seed=args.seed,
        config=_settings(args).config,
        hw_preset=args.hw,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BigKernel (IPDPS 2014) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list benchmark applications")
    sub.add_parser("hw", help="print the simulated testbed")

    p_run = sub.add_parser("run", help="run one app on the execution schemes")
    p_run.add_argument("app", help="application name (see `repro apps`)")
    p_run.add_argument("--engine", default="all",
                       help="engine name or 'all' (default)")
    _add_common(p_run)

    for name, help_text in (
        ("fig4a", "speedups over serial CPU (Fig. 4a)"),
        ("fig4b", "comp/comm ratio, single buffer (Fig. 4b)"),
        ("fig5", "incremental feature benefit (Fig. 5)"),
        ("fig6", "pipeline stage breakdown (Fig. 6)"),
        ("table1", "mapped-data characteristics (Table I)"),
        ("table2", "pattern-recognition benefit (Table II)"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_common(p)

    p_v = sub.add_parser(
        "verify",
        help="run the invariant + differential + fuzz verification suites",
    )
    p_v.add_argument("--quick", action="store_true",
                     help="CI scale: smaller datasets, fewer fuzz cases")
    p_v.add_argument("--seed", type=int, default=7, help="verification seed")
    p_v.add_argument("--data-mib", type=int, default=0,
                     help="dataset size (MiB); 0 = suite default")
    p_v.add_argument("--fuzz-iters", type=int, default=None,
                     help="fuzz cases per loop (default: 8 quick / 30 full)")
    p_v.add_argument("--fastpath", action="store_true",
                     help="also run the fastpath-vs-des differential "
                          "(analytic pipeline against the simulator)")
    p_v.add_argument("--compiled", action="store_true",
                     help="also run the compiled-vs-interpreter differential "
                          "(vectorized kernel backend against the "
                          "tree-walking oracle)")
    p_v.add_argument("--analytic", action="store_true",
                     help="also run the closed-form-predictor-vs-des "
                          "differential (repro.analytic against the "
                          "simulator, 5%% relative tolerance)")
    p_v.add_argument("--multigpu", action="store_true",
                     help="also run the sharded scale-out differential "
                          "(multi-GPU engine vs the serial oracle, per-shard "
                          "trace invariants, analytic shard model, fuzzed "
                          "fabrics)")
    p_v.add_argument("--serve", action="store_true",
                     help="also run the serve differential (a multi-tenant "
                          "trace through a live server; every response "
                          "bit-equal to a fresh one-shot oracle)")

    p_c = sub.add_parser(
        "chaos",
        help="fault-injection sweep: app x engine matrix under a fault grid "
             "(see docs/faults.md)",
    )
    p_c.add_argument("--quick", action="store_true",
                     help="CI scale: one app, 1 MiB datasets")
    p_c.add_argument("--seed", type=int, default=7,
                     help="fault-grid + data seed (same seed => identical "
                          "FaultReport)")
    p_c.add_argument("--data-mib", type=int, default=0,
                     help="dataset size (MiB); 0 = sweep default")
    p_c.add_argument("--json", default="",
                     help="also write the FaultReport JSON to this path")
    p_c.add_argument("--jobs", type=int, default=1,
                     help="parallel (app, engine) blocks; the fingerprint "
                          "is identical for any jobs/backend")
    p_c.add_argument("--backend", default="auto",
                     choices=["auto", "thread", "process"],
                     help="executor for --jobs > 1 (auto picks process: "
                          "faulted runs are DES-bound)")
    p_c.add_argument("--serve", action="store_true",
                     help="route every faulted run through a live serve "
                          "Server; the report fingerprint must match the "
                          "direct sweep (fault containment survives "
                          "batching)")

    p_b = sub.add_parser(
        "bench",
        help="competitor comparison: BigKernel vs the unified-memory engine "
             "family on the paper's six apps (see docs/engines.md)",
    )
    p_b.add_argument("--engine", default="uvm", choices=["uvm"],
                     help="competitor family to compare against "
                          "(currently only 'uvm')")
    p_b.add_argument("--data-mib", type=int, default=4,
                     help="dataset size (MiB)")
    p_b.add_argument("--seed", type=int, default=4, help="data generator seed")
    p_b.add_argument("--jobs", type=int, default=1,
                     help="parallel (app, engine) cells")
    p_b.add_argument("--backend", default="auto",
                     choices=["auto", "thread", "process"],
                     help="executor for --jobs > 1 (UVM runs are DES-bound, "
                          "so auto picks process)")
    p_b.add_argument("--gpus", default="",
                     help="run the multi-GPU scaling sweep instead: "
                          "comma-separated GPU counts, e.g. 1,2,4,8 "
                          "(see docs/engines.md)")
    p_b.add_argument("--shared-link", action="store_true",
                     help="with --gpus: all shards behind one PCIe root "
                          "complex instead of dedicated links")

    p_sw = sub.add_parser(
        "sweep", help="autotune one engine/app pair over the default grid"
    )
    p_sw.add_argument("app", help="application name (see `repro apps`)")
    p_sw.add_argument("--engine", default="bigkernel",
                      help="engine to tune (default: bigkernel)")
    p_sw.add_argument("--jobs", type=int, default=1,
                      help="parallel sweep workers (0 = one per CPU)")
    p_sw.add_argument("--backend", default="auto",
                      choices=["auto", "thread", "process"],
                      help="executor for --jobs > 1: process sidesteps the "
                           "GIL for DES-bound grids, thread suits "
                           "fastpath/cached ones (auto decides)")
    p_sw.add_argument("--mode", default="des",
                      choices=["des", "analytic", "hybrid"],
                      help="des simulates every point; analytic prices the "
                           "grid with the closed-form predictor (no "
                           "simulation); hybrid ranks analytically and "
                           "simulates only the top candidates")
    p_sw.add_argument("--top-k", type=int, default=8,
                      help="candidates the hybrid mode DES-verifies "
                           "(exact prediction ties are expanded)")
    p_sw.add_argument("--points", type=int, default=0,
                      help="analytic mode only: scan a generated grid of at "
                           "least this many configurations instead of the "
                           "default tuning grid")
    p_sw.add_argument("--spot-check", action="store_true",
                      help="analytic mode only: DES-simulate the predicted "
                           "optimum and report the relative error")
    _add_common(p_sw)

    p_srv = sub.add_parser(
        "serve",
        help="multi-tenant serving: replay a seeded request trace through "
             "the admission queue + WDRR scheduler + batched dispatcher "
             "(see docs/serving.md)",
    )
    p_srv.add_argument("--duration", type=float, default=3.0,
                       help="seconds of arrivals to generate")
    p_srv.add_argument("--rate", type=float, default=20.0,
                       help="mean offered arrival rate (requests/second)")
    p_srv.add_argument("--tenants", default="",
                       help="tenant mix as 'name=weight,...' "
                            "(default: alpha=1,beta=2,gamma=4)")
    p_srv.add_argument("--seed", type=int, default=7, help="trace seed")
    p_srv.add_argument("--data-mib", type=int, default=1,
                       help="dataset size per job (MiB)")
    p_srv.add_argument("--max-queue", type=int, default=64,
                       help="total backlog before admission control rejects")
    p_srv.add_argument("--max-batch", type=int, default=8,
                       help="dispatch window size")
    p_srv.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --backend process")
    p_srv.add_argument("--backend", default="thread",
                       choices=["thread", "process"],
                       help="thread amortizes via batched engine entry; "
                            "process parallelizes unique jobs")
    p_srv.add_argument("--slo", type=float, default=0.0,
                       help="per-request latency SLO in milliseconds applied "
                            "to every tenant (0 = best-effort, no deadlines)")
    p_srv.add_argument("--scheduling", default="edf",
                       choices=["edf", "fifo"],
                       help="edf: deadline-aware dispatch with WDRR tiebreak "
                            "(identical to WDRR without SLOs); fifo: "
                            "deadline-blind arrival order (baseline)")
    p_srv.add_argument("--adaptive-batch", action="store_true",
                       help="size dispatch windows from priced deadline "
                            "slack instead of always filling max-batch")
    p_srv.add_argument("--no-cache", action="store_true",
                       help="disable the run cache (every job executes)")
    p_srv.add_argument("--disk-cache", action="store_true",
                       help="enable the persistent disk tier "
                            "(.repro-cache / REPRO_CACHE_DIR)")
    p_srv.add_argument("--verify", action="store_true",
                       help="oracle-check every response inline "
                            "(exit nonzero on any divergence)")
    p_srv.add_argument("--expect-cache-hits", action="store_true",
                       help="exit nonzero if the run cache never hit "
                            "(smoke-test guard)")
    p_srv.add_argument("--trace", dest="trace_out", default="",
                       help="write the per-response log JSON to this path")

    p_rep = sub.add_parser(
        "report",
        help="instant analytic report: predicted per-engine times, "
             "bottleneck stages, speedups and chunk-size sensitivity "
             "(closed-form, no simulation)",
    )
    p_rep.add_argument("app", help="application name (see `repro apps`)")
    p_rep.add_argument("--hw", default=None,
                       help="hardware preset for what-if analysis "
                            "(see repro.hw.spec.HW_PRESETS; default: the "
                            "paper's testbed)")
    _add_common(p_rep)

    p_tr = sub.add_parser("trace", help="dump a BigKernel Chrome-trace timeline")
    p_tr.add_argument("app")
    p_tr.add_argument("--out", default="bigkernel_trace.json")
    p_tr.add_argument("--gantt", action="store_true",
                      help="also print an ASCII Gantt chart")
    _add_common(p_tr)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "apps": cmd_apps,
        "run": cmd_run,
        "hw": cmd_hw,
        "trace": cmd_trace,
        "verify": cmd_verify,
        "chaos": cmd_chaos,
        "bench": cmd_bench,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
        "report": cmd_report,
        "fig4a": cmd_figure,
        "fig4b": cmd_figure,
        "fig5": cmd_figure,
        "fig6": cmd_figure,
        "table1": cmd_figure,
        "table2": cmd_figure,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
