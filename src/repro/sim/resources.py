"""Counted resources with FIFO queuing.

A :class:`Resource` models a device that at most ``capacity`` processes may
hold at once — the PCIe link, a DMA engine channel, a CPU core, the GPU's
SM array. Requests are granted strictly in arrival order, which keeps the
in-order DMA property the BigKernel synchronization protocol relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event


class Request(Event):
    """Event that fires once the resource has been acquired.

    Usable as a context manager so the resource is released even if the
    holding process fails::

        with res.request() as req:
            yield req
            yield env.timeout(cost)
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if self in self.resource._waiting:
            self.resource._waiting.remove(self)


class Release(Event):
    """Event representing a completed release (fires immediately)."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        resource._do_release(request)
        self.succeed(None)


class Resource:
    """A shared resource with integer capacity and FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or f"resource@{id(self):#x}"
        self._users: list[Request] = []
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for one unit of the resource; yield the returned event."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Give back a unit previously granted to ``request``."""
        return Release(self, request)

    # -- internals ----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self._users) < self.capacity and not self._waiting:
            self._users.append(request)
            request.succeed(None)
        else:
            self._waiting.append(request)

    def _do_release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        elif request in self._waiting:
            # Releasing an ungranted request simply withdraws it.
            self._waiting.remove(request)
            return
        else:
            raise SimulationError(
                f"release of a request that does not hold {self.name!r}"
            )
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed(None)


class PriorityRequest(Request):
    """Request carrying a priority (lower value = more urgent)."""

    def __init__(self, resource: "PriorityResource", priority: int):
        self.priority = priority
        self._seq: Optional[int] = None
        super().__init__(resource)


class PriorityResource(Resource):
    """Resource granting waiters in (priority, arrival) order."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        super().__init__(env, capacity, name)
        self._arrivals = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        self._arrivals += 1
        request._seq = self._arrivals
        if len(self._users) < self.capacity and not self._waiting:
            self._users.append(request)
            request.succeed(None)
        else:
            self._waiting.append(request)
            self._waiting = deque(
                sorted(self._waiting, key=lambda r: (r.priority, r._seq))  # type: ignore[attr-defined]
            )
