"""Generator-based discrete-event simulation engine.

A minimal SimPy-like kernel purpose-built for this reproduction: simulated
*processes* are Python generators that ``yield`` events (timeouts, resource
requests, store gets, flags, barriers) and are resumed by the environment
when those events fire. The BigKernel pipeline, the DMA engine, the PCIe
link and the GPU/CPU compute stages are all modelled as processes competing
for :class:`~repro.sim.resources.Resource` objects on one shared timeline.

Public surface::

    from repro.sim import Environment, Resource, Store, Flag, Barrier

    env = Environment()

    def worker(env, link):
        with link.request() as req:
            yield req
            yield env.timeout(1.5)     # hold the link for 1.5 simulated seconds

    link = Resource(env, capacity=1)
    env.process(worker(env, link))
    env.run()
"""

from repro.sim.core import (
    Environment,
    Event,
    Timeout,
    Process,
    AllOf,
    AnyOf,
    PENDING,
    URGENT,
    NORMAL,
)
from repro.sim.resources import Resource, Request, Release, PriorityResource
from repro.sim.stores import Store, StorePut, StoreGet
from repro.sim.sync import Flag, Barrier, Semaphore
from repro.sim.trace import TraceRecorder, Interval
from repro.sim.monitor import ResourceMonitor, utilization

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "PENDING",
    "URGENT",
    "NORMAL",
    "Resource",
    "Request",
    "Release",
    "PriorityResource",
    "Store",
    "StorePut",
    "StoreGet",
    "Flag",
    "Barrier",
    "Semaphore",
    "TraceRecorder",
    "Interval",
    "ResourceMonitor",
    "utilization",
]
