"""Core discrete-event machinery: environment, events, processes.

The design follows SimPy's architecture (events with callback lists, a heap
of scheduled events, generator-based processes) but is intentionally small:
only the features the BigKernel pipeline model needs are implemented, and
each of those features is tested directly.

Determinism: ties in time are broken first by event *priority* (``URGENT``
before ``NORMAL``) and then by schedule order, so repeated runs of the same
model produce identical timelines.

Performance: this module is the simulator's hot loop — every chunk of every
pipeline stage turns into a handful of events here, and DES-bound workloads
(traced, verified, or faulted runs) spend most of their wall-clock inside
:meth:`Environment.run`. The implementation therefore uses ``__slots__`` on
the event classes, binds the heap and callback list to locals inside the
dispatch loop, and flattens the common :class:`Timeout` construction into a
single heap push. None of this changes scheduling order: the heap entries,
the ``_eid`` sequence and the tie-break tuple are byte-for-byte the same as
the straightforward implementation, so timelines stay bit-identical (the
calibration locks in ``tests/test_calibration_lock.py`` pin this at 1e-9).
"""

from __future__ import annotations

from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import Deadlock, Interrupt, SimulationError

#: Sentinel for "event has not yet been given a value".
PENDING = object()

#: Priority for events that must fire before same-time normal events
#: (used internally for process resumption after an interrupt).
URGENT = 0
#: Default event priority.
NORMAL = 1


class Event:
    """An outcome that will happen at some point in simulated time.

    Events start *pending*; they become *triggered* once given a value (via
    :meth:`succeed` or :meth:`fail`) and scheduled, and *processed* once the
    environment has run their callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: set True once a failure value has been retrieved or handled,
        #: suppressing the "unhandled failure" error at run() end.
        self._defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has no value yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will have it raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(
        self,
        env: "Environment",
        delay: float,
        value: Any = None,
        _NORMAL: int = NORMAL,
        _heappush: Callable = heappush,
    ):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Flattened Event.__init__ + env.schedule: timeouts are by far the
        # most-constructed event, and the heap entry below is identical to
        # what schedule() would push (same _eid sequence, same tuple).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        eid = env._eid + 1
        env._eid = eid
        _heappush(env._queue, (env._now + delay, _NORMAL, eid, self))


class Initialize(Event):
    """Internal event used to start a new process on the next step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume_cb)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running simulated activity, driven by a generator.

    The process *is* an event: it triggers with the generator's return value
    when the generator finishes, so other processes can ``yield proc`` to
    join on it.
    """

    __slots__ = ("_generator", "_target", "name", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        #: the bound resume callback, created once — appending ``_resume``
        #: directly would allocate a fresh bound method per wait
        self._resume_cb = self._resume
        self._target: Optional[Event] = Initialize(env, self)
        self.name = getattr(generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The process is rescheduled immediately (URGENT) with the interrupt;
        whatever event it was waiting on is abandoned.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is None or isinstance(self._target, Initialize):
            raise SimulationError("cannot interrupt a process before it starts")
        wake = Event(self.env)
        wake._ok = False
        wake._value = Interrupt(cause)
        wake._defused = True
        wake.callbacks.append(self._resume_cb)
        self.env.schedule(wake, priority=URGENT)
        # Detach from the event we were waiting on.
        target = self._target
        if target.callbacks is not None and self._resume_cb in target.callbacks:
            target.callbacks.remove(self._resume_cb)
        self._target = wake

    # -- engine internals ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        send = self._generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._target = None
                env._active_process = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                try:
                    self._generator.throw(exc)
                except BaseException as err:
                    self._target = None
                    self.fail(err)
                    return
                raise exc  # pragma: no cover - generator swallowed the error

            if next_event.callbacks is not None:
                # Still pending or scheduled: wait for it.
                next_event.callbacks.append(self._resume_cb)
                self._target = next_event
                env._active_process = None
                return
            # Already processed: continue immediately with its value.
            event = next_event


class Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all condition events must share one environment")
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.callbacks is None and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every constituent event has succeeded."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed({ev: ev._value for ev in self.events})


class AnyOf(Condition):
    """Triggers as soon as one constituent event has succeeded."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed({event: event._value})


class Environment:
    """Owns the simulated clock and the pending event heap."""

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "timeout")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: create an event that fires ``delay`` seconds from now — bound as
        #: a C-level partial because timeouts dominate event construction
        #: (a plain method would add a Python frame per timeout)
        self.timeout: Callable[..., Timeout] = partial(Timeout, self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a new simulated process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: any one of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue ``event`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise Deadlock("event queue is empty")
        self._now, _, _, event = heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, time ``until``, or event ``until``.

        Returns the value of ``until`` when it is an event.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event._value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        # The dispatch below is step() inlined with the heap bound to a
        # local, split per stopping condition so the per-event overhead of
        # the unused conditions is never paid. Event order is exactly
        # step()'s: heappop on (time, priority, eid).
        queue = self._queue
        if stop_event is None and stop_time == float("inf"):
            # run-to-exhaustion: the pipeline's common case
            while queue:
                self._now, _, _, event = heappop(queue)
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None

        while queue:
            if stop_event is not None and stop_event.callbacks is None:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            if queue[0][0] > stop_time:
                self._now = stop_time
                return None
            self._now, _, _, event = heappop(queue)
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value

        if stop_event is not None:
            if stop_event.callbacks is None:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise Deadlock(
                "run(until=<event>) exhausted the queue before the event fired"
            )
        return None
