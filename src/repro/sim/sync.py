"""Synchronization primitives mirroring the paper's mechanisms.

The paper (Section IV-C) notes that CPU<->GPU signalling is limited to
memory flags plus busy-waiting, and that GPU-side threads synchronize with
the efficient ``bar.red`` barrier instruction. :class:`Flag` and
:class:`Barrier` model those two mechanisms on the simulated timeline,
counting signal/wait traffic so the cost models can charge for it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.errors import SimulationError, SynchronizationError
from repro.sim.core import Environment, Event


class Flag:
    """A memory flag one side sets and the other busy-waits on.

    Re-armable: after :meth:`clear` the flag can be set again, which is how
    the per-chunk ready flags in the pipeline are reused. ``signal_count``
    and ``wait_count`` record traffic for the synchronization cost model.
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name or f"flag@{id(self):#x}"
        self._set = False
        self._value: Any = None
        self._waiters: deque[Event] = deque()
        self.signal_count = 0
        self.wait_count = 0

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        """Set the flag, waking every current waiter."""
        self.signal_count += 1
        self._set = True
        self._value = value
        while self._waiters:
            self._waiters.popleft().succeed(value)

    def clear(self) -> None:
        """Re-arm the flag for the next chunk iteration."""
        self._set = False
        self._value = None

    def wait(self) -> Event:
        """Event that fires when (or immediately if) the flag is set."""
        self.wait_count += 1
        ev = Event(self.env)
        if self._set:
            ev.succeed(self._value)
        else:
            self._waiters.append(ev)
        return ev


class Barrier:
    """A reusable ``bar.red``-style barrier for ``parties`` processes.

    The k-th arrival in each generation releases all waiters of that
    generation; the barrier then resets for the next generation, matching
    the once-per-chunk barriering in Fig. 3 of the paper.
    """

    def __init__(self, env: Environment, parties: int, name: str = ""):
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self.name = name or f"barrier@{id(self):#x}"
        self._arrived = 0
        self._generation = 0
        self._waiters: list[Event] = []

    @property
    def generation(self) -> int:
        """How many times the barrier has tripped."""
        return self._generation

    @property
    def waiting(self) -> int:
        """Arrivals so far in the current generation."""
        return self._arrived

    def wait(self) -> Event:
        """Arrive at the barrier; the event fires when all parties have."""
        ev = Event(self.env)
        self._arrived += 1
        if self._arrived > self.parties:
            raise SynchronizationError(
                f"{self.name}: more arrivals ({self._arrived}) than parties"
                f" ({self.parties}) in one generation"
            )
        self._waiters.append(ev)
        if self._arrived == self.parties:
            gen = self._generation
            waiters, self._waiters = self._waiters, []
            self._arrived = 0
            self._generation += 1
            for w in waiters:
                w.succeed(gen)
        return ev


class Semaphore:
    """Counting semaphore used for bounded buffer-ring occupancy.

    The BigKernel buffer instances form a ring: a stage may not produce into
    buffer slot *n* before the consumer of slot *n - depth* has finished.
    That is exactly ``acquire``/``release`` on a semaphore initialized to
    the ring depth.
    """

    def __init__(self, env: Environment, value: int, name: str = ""):
        if value < 0:
            raise SimulationError(f"semaphore value must be >= 0, got {value}")
        self.env = env
        self.name = name or f"semaphore@{id(self):#x}"
        self._value = value
        self._waiters: deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        """Take one permit; fires when a permit is available."""
        ev = Event(self.env)
        if self._value > 0:
            self._value -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self, n: int = 1) -> None:
        """Return ``n`` permits, waking blocked acquirers FIFO."""
        if n < 1:
            raise SimulationError(f"release count must be >= 1, got {n}")
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().succeed(None)
            else:
                self._value += 1
