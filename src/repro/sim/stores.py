"""FIFO item stores for producer/consumer pipelines.

A :class:`Store` carries discrete items between simulated processes — the
BigKernel pipeline uses stores as the hand-off points between stages when a
model wants queue semantics rather than raw flag signalling.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.core import Environment, Event


class StorePut(Event):
    """Fires once the item has been accepted by the store."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    """Fires with the retrieved item as its value."""

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._do_get(self)


class Store:
    """Bounded FIFO queue of items with blocking put/get events."""

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or f"store@{id(self):#x}"
        self.items: deque[Any] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()

    @property
    def level(self) -> int:
        """Number of items currently held."""
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Offer ``item``; the returned event fires when accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request one item; the returned event fires with the item."""
        return StoreGet(self)

    # -- internals ----------------------------------------------------------
    def _do_put(self, event: StorePut) -> None:
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(event.item)
            event.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed(None)
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        if self.items:
            event.succeed(self.items.popleft())
            # Space freed: admit the oldest blocked putter.
            if self._putters:
                putter = self._putters.popleft()
                self.items.append(putter.item)
                putter.succeed(None)
        elif self._putters:
            putter = self._putters.popleft()
            event.succeed(putter.item)
            putter.succeed(None)
        else:
            self._getters.append(event)
