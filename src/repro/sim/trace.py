"""Timeline trace recording.

Every pipeline stage records the interval it occupied on its resource; the
figure harnesses (Fig. 2's pipeline picture, Fig. 6's stage-completion
breakdown) are computed from these intervals rather than from ad-hoc
counters, so what we report is what the simulated timeline actually did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class Interval:
    """One occupancy interval on a named track."""

    track: str  # e.g. "gpu", "pcie", "cpu0"
    label: str  # e.g. "addr_gen", "data_xfer", "compute"
    start: float
    end: float
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share simulated time.

        Intervals are half-open ``[start, end)``: an interval ending at *t*
        does not overlap one starting at *t*. Zero-duration intervals
        (instant events such as flag writes) are treated as points — a
        point at *t* overlaps any interval whose half-open span contains
        *t*, and two points overlap only when they coincide. Without this
        rule an instant event could never overlap anything, so capacity
        checkers would silently ignore it.
        """
        if self.start == self.end and other.start == other.end:
            return self.start == other.start
        if self.start == self.end:
            return other.start <= self.start < other.end
        if other.start == other.end:
            return self.start <= other.start < self.end
        return self.start < other.end and other.start < self.end


class TraceRecorder:
    """Accumulates :class:`Interval` records during a simulated run."""

    def __init__(self) -> None:
        self._intervals: list[Interval] = []

    def record(
        self,
        track: str,
        label: str,
        start: float,
        end: float,
        **meta: Any,
    ) -> Interval:
        """Append one interval; ``end`` must not precede ``start``."""
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start}, {end}]")
        iv = Interval(track, label, start, end, meta)
        self._intervals.append(iv)
        return iv

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    @property
    def intervals(self) -> list[Interval]:
        return list(self._intervals)

    def by_label(self, label: str) -> list[Interval]:
        """All intervals with the given stage label."""
        return [iv for iv in self._intervals if iv.label == label]

    def by_track(self, track: str) -> list[Interval]:
        """All intervals on the given resource track."""
        return [iv for iv in self._intervals if iv.track == track]

    def labels(self) -> list[str]:
        """Distinct labels in first-seen order."""
        seen: dict[str, None] = {}
        for iv in self._intervals:
            seen.setdefault(iv.label, None)
        return list(seen)

    def total_time(self, label: Optional[str] = None) -> float:
        """Sum of durations, optionally restricted to one label."""
        return sum(
            iv.duration for iv in self._intervals if label is None or iv.label == label
        )

    def busy_time(self, track: str) -> float:
        """Union length of intervals on ``track`` (overlaps merged)."""
        ivs = sorted(self.by_track(track), key=lambda iv: iv.start)
        busy = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for iv in ivs:
            if cur_start is None:
                cur_start, cur_end = iv.start, iv.end
            elif iv.start <= cur_end:
                cur_end = max(cur_end, iv.end)
            else:
                busy += cur_end - cur_start
                cur_start, cur_end = iv.start, iv.end
        if cur_start is not None:
            busy += cur_end - cur_start
        return busy

    def makespan(self) -> float:
        """End of the last interval minus start of the first."""
        if not self._intervals:
            return 0.0
        return max(iv.end for iv in self._intervals) - min(
            iv.start for iv in self._intervals
        )

    @staticmethod
    def _chrome_row(iv: "Interval") -> str:
        """Visual row (thread) of an interval: retried DMA attempts get a
        dedicated ``<track>:retry`` row so failed attempts are visually
        distinguishable from the successful transfer on the main track."""
        if iv.meta.get("retry") or iv.label.endswith("-retry"):
            return f"{iv.track}:retry"
        return iv.track

    def to_chrome_trace(self) -> list[dict]:
        """Render the timeline as Chrome ``chrome://tracing`` events.

        Each track becomes a thread; each interval a complete ("X") event
        with microsecond timestamps. Retried DMA attempts are placed on a
        dedicated ``<track>:retry`` thread and tagged ``cat: "retry"``.
        Load the JSON dump in a trace viewer (Perfetto, chrome://tracing)
        to inspect the pipeline visually.
        """
        rows = {
            r: i
            for i, r in enumerate(dict.fromkeys(self._chrome_row(iv) for iv in self))
        }
        events: list[dict] = [
            {
                "name": row,
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "cat": "meta",
                "args": {"name": row},
            }
            for row, tid in rows.items()
        ]
        for iv in self._intervals:
            row = self._chrome_row(iv)
            event = {
                "name": iv.label,
                "ph": "X",
                "pid": 0,
                "tid": rows[row],
                "ts": iv.start * 1e6,
                "dur": iv.duration * 1e6,
                "args": dict(iv.meta),
            }
            if row.endswith(":retry"):
                event["cat"] = "retry"
            events.append(event)
        return events

    def dump_chrome_trace(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        import json

        with open(path, "w") as fh:
            json.dump({"traceEvents": self.to_chrome_trace()}, fh, default=str)

    def overlap_time(self, label_a: str, label_b: str) -> float:
        """Total simulated time during which both labels were active.

        Used to *verify* that the pipeline actually overlaps communication
        with computation rather than assuming it.
        """
        total = 0.0
        for a in self.by_label(label_a):
            for b in self.by_label(label_b):
                lo = max(a.start, b.start)
                hi = min(a.end, b.end)
                if hi > lo:
                    total += hi - lo
        return total
