"""Resource utilization monitoring built on the trace recorder."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import TraceRecorder


@dataclass
class ResourceMonitor:
    """Summarizes how busy one track was over a run."""

    trace: TraceRecorder
    track: str

    @property
    def busy(self) -> float:
        return self.trace.busy_time(self.track)

    def utilization(self, span: float | None = None) -> float:
        """Busy fraction over ``span`` (defaults to the trace makespan)."""
        span = self.trace.makespan() if span is None else span
        if span <= 0:
            return 0.0
        return min(1.0, self.busy / span)


def utilization(trace: TraceRecorder, track: str, span: float | None = None) -> float:
    """Convenience wrapper: busy fraction of ``track`` over the run."""
    return ResourceMonitor(trace, track).utilization(span)
