"""Host CPU cost model.

Covers the three CPU roles in the evaluation: the serial and multithreaded
baselines, the staging memcpy of traditional (single/double-buffer) GPU
schemes, and BigKernel's data-assembly stage with its cache-locality
behaviour (Section IV-B: BigKernel does two reads + two writes per
prefetched element where traditional staging does one read + one write).
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.spec import CpuSpec


class CpuDevice:
    """Analytic timing for host-side work, parameterized by a CpuSpec."""

    def __init__(self, spec: CpuSpec):
        self.spec = spec

    # -- baselines -----------------------------------------------------------
    def serial_compute_time(self, n_ops: float, bytes_streamed: float) -> float:
        """One thread doing ``n_ops`` over ``bytes_streamed`` of data.

        Roofline on the single-thread machine: arithmetic throughput vs the
        bandwidth one thread can pull by itself.
        """
        if n_ops < 0 or bytes_streamed < 0:
            raise HardwareError("work amounts must be non-negative")
        compute_t = n_ops / self.spec.peak_ops_per_thread
        mem_t = bytes_streamed / self.spec.per_thread_bandwidth
        return max(compute_t, mem_t)

    def mt_compute_time(
        self, n_ops: float, bytes_streamed: float, threads: int | None = None
    ) -> float:
        """Multithreaded version: core scaling with efficiency, socket-BW cap.

        Hyperthreads add memory-level parallelism but no arithmetic units,
        so op throughput scales with physical cores only.
        """
        threads = self.spec.threads if threads is None else threads
        if threads < 1:
            raise HardwareError(f"threads must be >= 1, got {threads}")
        cores_used = min(threads, self.spec.cores)
        compute_t = n_ops / (
            self.spec.peak_ops_per_thread * cores_used * self.spec.mt_efficiency
        )
        agg_bw = min(
            self.spec.mem_bandwidth, threads * self.spec.per_thread_bandwidth
        )
        mem_t = bytes_streamed / agg_bw
        return max(compute_t, mem_t)

    # -- staging for traditional GPU schemes ----------------------------------
    def staging_copy_time(self, nbytes: float) -> float:
        """memcpy from pageable source into the pinned staging buffer.

        One read + one write stream on one thread; wide streaming copies
        sustain about two thirds of the single-thread streaming bandwidth.
        """
        if nbytes < 0:
            raise HardwareError("nbytes must be non-negative")
        return nbytes / (self.spec.per_thread_bandwidth * 2.0 / 3.0)

    # -- BigKernel data assembly ----------------------------------------------
    def random_read_bandwidth(self) -> float:
        """Achieved bytes/s when every read misses (one line per miss)."""
        return self.spec.cache_line / self.spec.miss_latency

    def assembly_time(
        self,
        n_elements: float,
        elem_bytes: float,
        hit_rate: float,
        address_driven: bool,
        address_bytes: int = 8,
        n_accesses: float | None = None,
        ops_per_access: float = 6.0,
    ) -> float:
        """Duration of gathering ``n_elements`` into the prefetch buffer.

        Three cost components: (i) read bandwidth, blending cache-speed and
        miss-speed by ``hit_rate``; (ii) sequential writes to the prefetch
        buffer; (iii) per-access loop overhead — ``n_accesses`` is the
        number of separate copy operations the gather loop performs (when a
        recognized pattern exposes contiguous runs, one access covers a
        whole run; without a pattern every element is its own access).
        When no pattern was recognized (``address_driven``), the CPU also
        streams through the address buffer, one address per element.
        """
        if not 0.0 <= hit_rate <= 1.0:
            raise HardwareError(f"hit_rate must be in [0,1], got {hit_rate}")
        if n_elements < 0 or elem_bytes < 0:
            raise HardwareError("work amounts must be non-negative")
        data_bytes = n_elements * elem_bytes
        hit_bw = self.spec.per_thread_bandwidth
        miss_bw = self.random_read_bandwidth()
        # time = hit portion at streaming speed + miss portion at miss speed
        read_t = (data_bytes * hit_rate) / hit_bw + (data_bytes * (1.0 - hit_rate)) / miss_bw
        write_t = data_bytes / self.spec.per_thread_bandwidth
        addr_t = (
            n_elements * address_bytes / self.spec.per_thread_bandwidth
            if address_driven
            else 0.0
        )
        accesses = n_elements if n_accesses is None else n_accesses
        if accesses < 0:
            raise HardwareError("n_accesses must be non-negative")
        loop_t = accesses * ops_per_access / self.spec.peak_ops_per_thread
        return read_t + write_t + addr_t + loop_t

    def scatter_time(self, n_elements: float, elem_bytes: float, hit_rate: float) -> float:
        """Write-back stage: scatter returned values into the mapped source."""
        if not 0.0 <= hit_rate <= 1.0:
            raise HardwareError(f"hit_rate must be in [0,1], got {hit_rate}")
        data_bytes = n_elements * elem_bytes
        hit_bw = self.spec.per_thread_bandwidth
        miss_bw = self.random_read_bandwidth()
        read_t = data_bytes / self.spec.per_thread_bandwidth  # read the write buffer
        write_t = (data_bytes * hit_rate) / hit_bw + (
            data_bytes * (1.0 - hit_rate)
        ) / miss_bw
        return read_t + write_t
