"""Host-side fabric topology for multi-GPU scale-out.

One GPU sees the whole host: the full socket memory bandwidth feeds its
assembly threads and a dedicated PCIe x16 link feeds its DMA engine. K
GPUs do not scale that picture linearly — they share two host resources:

* **NUMA memory bandwidth.** The testbed's socket bandwidth is split
  across NUMA nodes; each shard's assembly threads stream mapped data
  from the node their GPU is attached to. With NUMA-aware placement a
  shard gets its node's bandwidth divided by the shards pinned there;
  without it, remote accesses pay ``remote_mem_penalty`` on top.
* **The PCIe root complex.** With ``shared_link`` every DMA crosses one
  root-complex port, so transfers of different shards serialize on the
  same FIFO :class:`~repro.hw.pcie.PcieLink` grant queue (modeled as an
  emergent property of the DES, not a bandwidth division). Dedicated
  links (dual-x16 style boards) give each shard its own queue.

The same SUMMA-style contention shapes apply to the cross-GPU merge:
collecting per-shard accumulator states is a serial D2H gather on a
shared root complex but parallel over dedicated links, and the host-side
reduction streams at socket memory bandwidth either way
(:func:`merge_cost` prices both, and is shared by the engine and the
closed-form predictor so they agree to the bit on this component).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RuntimeConfigError
from repro.hw.spec import CpuSpec, HardwareSpec


@dataclass(frozen=True)
class FabricSpec:
    """Shared host-resource topology for a K-GPU configuration.

    ``n_gpus`` modeled devices hang off a host with ``numa_nodes`` memory
    nodes. ``shared_link`` puts every device behind one PCIe root-complex
    port (transfers serialize); ``False`` models one x16 link per device.
    ``numa_aware`` places each shard's assembly threads on the node its
    GPU is attached to; ``False`` leaves them unplaced, paying
    ``remote_mem_penalty`` (fraction of local bandwidth kept) on the
    node-interconnect hop.
    """

    n_gpus: int = 1
    shared_link: bool = False
    numa_nodes: int = 2
    numa_aware: bool = True
    remote_mem_penalty: float = 0.6

    def __post_init__(self):
        if self.n_gpus < 1:
            raise RuntimeConfigError("n_gpus must be >= 1")
        if self.numa_nodes < 1:
            raise RuntimeConfigError("numa_nodes must be >= 1")
        if not 0.0 < self.remote_mem_penalty <= 1.0:
            raise RuntimeConfigError(
                "remote_mem_penalty must be in (0, 1]"
            )

    @property
    def label(self) -> str:
        parts = [f"g{self.n_gpus}", "shared" if self.shared_link else "dedicated"]
        if not self.numa_aware:
            parts.append("numa-blind")
        return ":".join(parts)


def node_of_shard(shard: int, fabric: FabricSpec) -> int:
    """NUMA node shard ``shard``'s GPU (and assembly threads) sit on.

    Shards are spread contiguously: with 4 GPUs on 2 nodes, shards 0-1
    land on node 0 and shards 2-3 on node 1 (matching how dual-root
    boards wire their PCIe slots).
    """
    return shard * fabric.numa_nodes // fabric.n_gpus


def shards_on_node(node: int, fabric: FabricSpec) -> int:
    """How many shards contend for ``node``'s memory controller."""
    return sum(
        1 for g in range(fabric.n_gpus) if node_of_shard(g, fabric) == node
    )


def shard_mem_bandwidth(cpu: CpuSpec, shard: int, fabric: FabricSpec) -> float:
    """Host memory bandwidth shard ``shard``'s assembly threads see.

    A single shard keeps the whole socket (the one-GPU model must stay
    bit-identical to the base engine). Beyond that, each node's share of
    the socket bandwidth is divided among the shards placed on it;
    NUMA-blind placement additionally pays the interconnect penalty.
    """
    if fabric.n_gpus == 1:
        return cpu.mem_bandwidth
    node = node_of_shard(shard, fabric)
    local = cpu.mem_bandwidth / fabric.numa_nodes
    share = local / max(1, shards_on_node(node, fabric))
    if not fabric.numa_aware:
        share *= fabric.remote_mem_penalty
    return share


def shard_workers(cpu: CpuSpec, fabric: FabricSpec) -> int:
    """Host assembly threads available to each shard's pipeline."""
    return max(1, cpu.threads // fabric.n_gpus)


def state_nbytes(state) -> int:
    """Size of an app's global accumulator state on the wire.

    Arrays travel at their buffer size; scalars as one 8-byte word. Used
    to price the cross-GPU merge (D2H collection + host reduction).
    """
    if not isinstance(state, dict):
        return 8
    total = 0
    for value in state.values():
        if isinstance(value, np.ndarray):
            total += int(value.nbytes)
        else:
            total += 8
    return total


def merge_cost(
    hw: HardwareSpec,
    fabric: FabricSpec,
    state_bytes: int,
    n_passes: int = 1,
) -> float:
    """Simulated seconds of the cross-GPU reduce/merge stage.

    Per synchronization point every shard's accumulator state crosses
    D2H — serially over a shared root complex, concurrently over
    dedicated links — and the host reduces K partials at socket memory
    bandwidth (read both operands, write one: the same 2x-traffic floor
    the assembly model uses). Pass boundaries additionally broadcast the
    merged state back H2D. The final merge (after the last pass) has no
    broadcast. One GPU needs no merge at all.
    """
    k = fabric.n_gpus
    if k == 1 or state_bytes <= 0:
        return 0.0
    t_xfer = hw.pcie.transfer_time(state_bytes, pinned=True)
    collect = k * t_xfer if fabric.shared_link else t_xfer
    reduce_t = 2.0 * state_bytes * (k - 1) / hw.cpu.mem_bandwidth
    broadcast = k * t_xfer if fabric.shared_link else t_xfer
    boundary = collect + reduce_t + broadcast
    final = collect + reduce_t
    return (n_passes - 1) * boundary + final
