"""CPU cache model used by the data-assembly cost estimator.

Two layers:

* :class:`CacheSim` — an exact set-associative LRU simulator driven by
  concrete address traces. Used by tests and by the locality-ablation bench
  to *measure* the hit-rate difference between GPU-access-order gathering
  and the paper's per-thread-contiguous read order (Section IV-B).
* :func:`analytic_hit_rate` — the closed-form estimate the engine-level cost
  models use for large runs, validated against the simulator on sampled
  traces.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import HardwareError


class CacheSim:
    """Set-associative LRU cache over byte addresses."""

    def __init__(self, capacity: int, line: int = 64, ways: int = 8):
        if capacity <= 0 or line <= 0 or ways <= 0:
            raise HardwareError("cache capacity, line and ways must be positive")
        if capacity % (line * ways):
            raise HardwareError(
                f"capacity {capacity} not divisible by line*ways={line * ways}"
            )
        self.capacity = capacity
        self.line = line
        self.ways = ways
        self.num_sets = capacity // (line * ways)
        # each set: OrderedDict tag -> None, LRU at front
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line_no = int(addr) // self.line
        idx = line_no % self.num_sets
        tag = line_no // self.num_sets
        s = self._sets[idx]
        if tag in s:
            s.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[tag] = None
        return False

    def access_range(self, addr: int, nbytes: int) -> tuple[int, int]:
        """Touch every line in ``[addr, addr+nbytes)``; returns (hits, misses)."""
        if nbytes <= 0:
            return (0, 0)
        h0, m0 = self.hits, self.misses
        first = int(addr) // self.line
        last = (int(addr) + nbytes - 1) // self.line
        for line_no in range(first, last + 1):
            self.access(line_no * self.line)
        return (self.hits - h0, self.misses - m0)

    def run_trace(self, addresses: np.ndarray, elem_bytes: int = 1) -> float:
        """Feed a whole trace; returns the hit rate."""
        for a in np.asarray(addresses, dtype=np.int64).tolist():
            self.access_range(a, elem_bytes)
        return self.hit_rate

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


def analytic_hit_rate(
    elem_bytes: int,
    cache_line: int,
    sequential: bool,
    working_set: int | None = None,
    cache_bytes: int | None = None,
) -> float:
    """Closed-form hit-rate estimate for the assembly read stream.

    *Sequential* gathers (per-thread-contiguous order, or pattern-driven
    unit-stride reads) hit whenever the element shares a line with its
    predecessor: ``1 - elem/line`` (clamped at 0). *Random* gathers over a
    ``working_set`` larger than the cache miss almost always; the residual
    hit chance is the capacity ratio.
    """
    if elem_bytes <= 0 or cache_line <= 0:
        raise HardwareError("elem_bytes and cache_line must be positive")
    if sequential:
        return max(0.0, 1.0 - elem_bytes / cache_line)
    if working_set is None or cache_bytes is None:
        return 0.0
    if working_set <= 0:
        raise HardwareError("working_set must be positive")
    return min(1.0, cache_bytes / working_set)
