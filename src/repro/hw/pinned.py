"""Pinned (page-locked) host memory accounting.

The DMA engine can only reach pinned pages (Section II), so every address,
prefetch and write buffer CPU-side must be pinned. The paper notes this
steals physical memory from other processes; we enforce a limit so
configurations that would not fit the testbed's 16 GB fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AllocationError, PinnedMemoryExceeded


@dataclass(frozen=True)
class PinnedBuffer:
    """A granted pinned region."""

    handle: int
    nbytes: int
    label: str


class PinnedAllocator:
    """Tracks pinned host allocations against a hard limit."""

    def __init__(self, limit_bytes: int, deny_after_bytes: Optional[int] = None):
        if limit_bytes <= 0:
            raise AllocationError(f"pinned limit must be positive, got {limit_bytes}")
        self.limit = int(limit_bytes)
        #: fault-injection hook (``repro.faults``): allocations are denied
        #: once usage would cross this threshold, modelling the OS
        #: reclaiming page-lock budget from the process
        self.deny_after_bytes = (
            int(deny_after_bytes) if deny_after_bytes is not None else None
        )
        self._next = 1
        self._live: dict[int, PinnedBuffer] = {}
        self.peak_usage = 0

    @property
    def used(self) -> int:
        return sum(b.nbytes for b in self._live.values())

    @property
    def available(self) -> int:
        return self.limit - self.used

    def alloc(self, nbytes: int, label: str = "") -> PinnedBuffer:
        """Pin ``nbytes``; raises :class:`PinnedMemoryExceeded` past the limit."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        if self.used + nbytes > self.limit:
            raise PinnedMemoryExceeded(
                f"pinning {nbytes} bytes ({label!r}) would exceed the "
                f"{self.limit}-byte limit ({self.available} available)"
            )
        if (
            self.deny_after_bytes is not None
            and self.used + nbytes > self.deny_after_bytes
        ):
            raise PinnedMemoryExceeded(
                f"pinning {nbytes} bytes ({label!r}) denied: injected fault "
                f"caps pinned usage at {self.deny_after_bytes} bytes "
                f"({self.used} already pinned)"
            )
        buf = PinnedBuffer(self._next, int(nbytes), label)
        self._next += 1
        self._live[buf.handle] = buf
        self.peak_usage = max(self.peak_usage, self.used)
        return buf

    def free(self, buf: PinnedBuffer) -> None:
        if buf.handle not in self._live:
            raise AllocationError(f"double free or unknown pinned buffer {buf.handle}")
        del self._live[buf.handle]
