"""First-fit allocator for simulated GPU global memory.

Engines call this for every ``cudaMalloc``-equivalent so that buffer sizing
bugs (e.g. a chunk size that cannot fit alongside resident structures) are
caught the same way they would be on real hardware: with an out-of-memory
error, not silent success.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, GpuOutOfMemory


@dataclass(frozen=True)
class Allocation:
    """A granted region of simulated device memory."""

    offset: int
    nbytes: int
    label: str


class GpuMemoryAllocator:
    """First-fit free-list allocator over ``capacity`` bytes."""

    def __init__(self, capacity: int, alignment: int = 256):
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        if alignment <= 0 or (alignment & (alignment - 1)):
            raise AllocationError(f"alignment must be a power of two, got {alignment}")
        self.capacity = int(capacity)
        self.alignment = alignment
        # Sorted list of (offset, nbytes) free holes.
        self._free: list[tuple[int, int]] = [(0, self.capacity)]
        self._live: dict[int, Allocation] = {}
        self.peak_usage = 0

    @property
    def used(self) -> int:
        return sum(a.nbytes for a in self._live.values())

    @property
    def available(self) -> int:
        return self.capacity - self.used

    @property
    def allocations(self) -> list[Allocation]:
        return sorted(self._live.values(), key=lambda a: a.offset)

    def _round(self, nbytes: int) -> int:
        a = self.alignment
        return (int(nbytes) + a - 1) // a * a

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        """Reserve ``nbytes`` (rounded to alignment); first fit."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        need = self._round(nbytes)
        for i, (off, size) in enumerate(self._free):
            if size >= need:
                alloc = Allocation(off, need, label)
                if size == need:
                    del self._free[i]
                else:
                    self._free[i] = (off + need, size - need)
                self._live[off] = alloc
                self.peak_usage = max(self.peak_usage, self.used)
                return alloc
        raise GpuOutOfMemory(
            f"cannot allocate {need} bytes ({label!r}): "
            f"{self.available} free of {self.capacity}, fragmented into "
            f"{len(self._free)} holes"
        )

    def free(self, alloc: Allocation) -> None:
        """Return a region, coalescing adjacent holes."""
        if alloc.offset not in self._live:
            raise AllocationError(f"double free or unknown allocation at {alloc.offset}")
        del self._live[alloc.offset]
        self._free.append((alloc.offset, alloc.nbytes))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((off, size))
        self._free = merged

    def reset(self) -> None:
        """Free everything (device reset)."""
        self._live.clear()
        self._free = [(0, self.capacity)]
