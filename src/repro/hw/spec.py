"""Hardware specification dataclasses and the paper's testbed presets.

Numbers come from Section V of the paper where given (GTX 680, 2 GB GPU
memory, PCIe Gen3 x16, 3.8 GHz quad-core Xeon E5 with 8 hardware threads and
16 GB quad-channel DDR3-1800) and from vendor datasheets for the quantities
the paper does not restate (GTX 680 memory bandwidth 192 GB/s, 8 SMX units).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.units import GB, GiB, MiB, KiB, US, MS


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU device."""

    name: str
    num_sms: int
    cores_per_sm: int
    clock_hz: float
    warp_size: int
    global_mem_bytes: int
    #: peak global-memory bandwidth (bytes/s)
    mem_bandwidth: float
    #: fraction of peak DRAM bandwidth a fully-coalesced streaming kernel
    #: actually sustains
    mem_efficiency: float
    #: size of one memory transaction segment (bytes)
    transaction_bytes: int
    shared_mem_per_sm: int
    registers_per_sm: int
    max_threads_per_sm: int
    max_threads_per_block: int
    #: fixed cost of one kernel launch (seconds)
    kernel_launch_overhead: float
    #: simple-precision operations retired per core per cycle
    ops_per_core_per_cycle: float
    #: latency of a GPU-side global memory round trip (seconds); used for
    #: flag busy-wait costing
    global_latency: float

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def peak_ops(self) -> float:
        """Peak arithmetic throughput, ops/second."""
        return self.total_cores * self.clock_hz * self.ops_per_core_per_cycle

    @property
    def effective_mem_bandwidth(self) -> float:
        """Sustained bandwidth for fully-coalesced streaming access."""
        return self.mem_bandwidth * self.mem_efficiency


@dataclass(frozen=True)
class CpuSpec:
    """Static description of the host CPU and its memory system."""

    name: str
    cores: int
    threads: int
    clock_hz: float
    #: sustained socket memory bandwidth for streaming access (bytes/s)
    mem_bandwidth: float
    #: what a single thread can stream by itself (bytes/s)
    per_thread_bandwidth: float
    #: combined L2/L3 capacity (bytes)
    cache_bytes: int
    cache_line: int
    #: average DRAM access latency for a cache miss (seconds)
    miss_latency: float
    #: arithmetic ops per core per cycle (superscalar + SIMD factored in)
    ops_per_core_per_cycle: float
    #: host memory size (bytes)
    dram_bytes: int
    #: parallel efficiency of the multithreaded baselines (sync overhead,
    #: shared-cache contention); applied to core scaling
    mt_efficiency: float

    @property
    def peak_ops_per_thread(self) -> float:
        return self.clock_hz * self.ops_per_core_per_cycle


@dataclass(frozen=True)
class PcieSpec:
    """Static description of the CPU-GPU interconnect."""

    name: str
    #: theoretical link throughput per direction (bytes/s)
    raw_bandwidth: float
    #: achievable fraction for large pinned-buffer DMA
    pinned_efficiency: float
    #: achievable fraction for pageable (staged) transfers
    pageable_efficiency: float
    #: per-transfer setup latency (driver + DMA descriptor, seconds)
    latency: float
    #: number of independent DMA engines (GTX 680 has one copy engine)
    dma_engines: int

    @property
    def pinned_bandwidth(self) -> float:
        return self.raw_bandwidth * self.pinned_efficiency

    @property
    def pageable_bandwidth(self) -> float:
        return self.raw_bandwidth * self.pageable_efficiency

    def transfer_time(
        self, nbytes: float, pinned: bool = True, segments: int = 1
    ) -> float:
        """Duration of one logical transfer of ``nbytes`` (seconds).

        ``segments`` charges the per-DMA setup latency multiple times — a
        BigKernel chunk is physically one DMA per thread-block buffer set,
        not one large copy.
        """
        if segments < 1:
            raise ValueError(f"segments must be >= 1, got {segments}")
        if nbytes <= 0:
            return self.latency * segments
        bw = self.pinned_bandwidth if pinned else self.pageable_bandwidth
        return self.latency * segments + nbytes / bw


@dataclass(frozen=True)
class HardwareSpec:
    """A complete machine: GPU + CPU + interconnect."""

    gpu: GpuSpec
    cpu: CpuSpec
    pcie: PcieSpec

    def scaled(self, **gpu_overrides) -> "HardwareSpec":
        """Return a copy with GPU fields overridden (for sweeps)."""
        return replace(self, gpu=replace(self.gpu, **gpu_overrides))


# ---------------------------------------------------------------------------
# Presets: the paper's testbed
# ---------------------------------------------------------------------------

GTX680 = GpuSpec(
    name="NVIDIA GeForce GTX 680",
    num_sms=8,
    cores_per_sm=192,
    clock_hz=1020e6,
    warp_size=32,
    global_mem_bytes=2 * GiB,
    mem_bandwidth=192 * GB,
    mem_efficiency=0.75,
    transaction_bytes=32,
    shared_mem_per_sm=48 * KiB,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    kernel_launch_overhead=10 * US,
    ops_per_core_per_cycle=1.0,
    global_latency=0.4 * US,
)

XEON_E5 = CpuSpec(
    name="Intel Xeon E5 3.8GHz quad-core",
    cores=4,
    threads=8,
    clock_hz=3.8e9,
    mem_bandwidth=52 * GB,
    per_thread_bandwidth=12 * GB,
    cache_bytes=10 * MiB,
    cache_line=64,
    miss_latency=80e-9,
    # irregular scalar kernels (parsing, hashing, branchy loops) retire well
    # below the machine's peak superscalar width
    ops_per_core_per_cycle=1.5,
    dram_bytes=16 * GiB,
    mt_efficiency=0.85,
)

PCIE_GEN3_X16 = PcieSpec(
    name="PCIe Gen3 x16",
    raw_bandwidth=15.75 * GB,
    pinned_efficiency=0.72,  # ~11.3 GB/s, typical measured H2D pinned
    pageable_efficiency=0.38,  # ~6 GB/s, staged through driver bounce buffers
    latency=8 * US,  # cudaMemcpyAsync submit + DMA descriptor setup
    dma_engines=1,
)

#: The paper's evaluation machine.
DEFAULT_HARDWARE = HardwareSpec(gpu=GTX680, cpu=XEON_E5, pcie=PCIE_GEN3_X16)

# ---------------------------------------------------------------------------
# What-if presets for the analytic predictor (``repro report --hw ...``)
# ---------------------------------------------------------------------------

#: Named machine variants for instant what-if reports. ``paper`` is the
#: evaluation testbed above; the others perturb one axis at a time so the
#: predicted bottleneck shift is attributable.
HW_PRESETS: dict[str, HardwareSpec] = {
    "paper": DEFAULT_HARDWARE,
    # half / double the interconnect (PCIe Gen2 x16 ≈ 8 GB/s raw,
    # Gen4 x16 ≈ 31.5 GB/s raw)
    "pcie-gen2": replace(
        DEFAULT_HARDWARE,
        pcie=replace(PCIE_GEN3_X16, name="PCIe Gen2 x16", raw_bandwidth=8 * GB),
    ),
    "pcie-gen4": replace(
        DEFAULT_HARDWARE,
        pcie=replace(PCIE_GEN3_X16, name="PCIe Gen4 x16", raw_bandwidth=31.5 * GB),
    ),
    # twice the SMs and DRAM bandwidth: does the pipeline stay
    # transfer-bound or flip to assembly-bound?
    "big-gpu": DEFAULT_HARDWARE.scaled(
        name="2x GTX 680 class", num_sms=16, mem_bandwidth=384 * GB
    ),
    # half the per-thread host bandwidth: stresses the assembly stage
    "slow-cpu": replace(
        DEFAULT_HARDWARE,
        cpu=replace(
            XEON_E5, name="half-bandwidth host", per_thread_bandwidth=6 * GB
        ),
    ),
}


def get_hardware(name: str) -> HardwareSpec:
    """Look up a what-if preset by name (see :data:`HW_PRESETS`)."""
    try:
        return HW_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown hardware preset {name!r}; available: "
            + ", ".join(sorted(HW_PRESETS))
        ) from None
