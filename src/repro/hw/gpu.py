"""GPU device model: occupancy, kernel-stage timing, compute resource.

Timing follows a roofline-style model: a kernel stage over one chunk takes
``max(arithmetic time, memory time)`` where the memory time is inflated by
the coalescing efficiency of its access pattern. For the Big Data-style
kernels the paper targets, the memory term dominates (the paper observes low
GPU core utilization), which is what makes the re-layout optimization
matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError
from repro.hw.spec import GpuSpec
from repro.sim.core import Environment
from repro.sim.resources import Resource


@dataclass(frozen=True)
class KernelCost:
    """Counted work of one kernel stage execution over one chunk."""

    #: arithmetic operations retired
    n_ops: float
    #: useful bytes read+written against global memory
    global_bytes: float
    #: coalescing efficiency in [elem/txn, 1]; actual DRAM traffic is
    #: ``global_bytes / efficiency``
    efficiency: float = 1.0
    #: additional fixed overhead (barriers, flag polling), seconds
    fixed_overhead: float = 0.0

    def __post_init__(self):
        if self.efficiency <= 0 or self.efficiency > 1.0:
            raise HardwareError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.n_ops < 0 or self.global_bytes < 0 or self.fixed_overhead < 0:
            raise HardwareError("kernel cost components must be non-negative")


@dataclass(frozen=True)
class BlockResources:
    """Per-thread-block resource requirements (the paper's ``Rtb``)."""

    threads: int
    shared_mem_bytes: int = 0
    registers_per_thread: int = 32


class GpuDevice:
    """A simulated GPU: spec + timing + an optional timeline resource.

    ``compute`` has capacity 2 so that one address-generation stage and one
    computation stage (different warps of the same resident blocks) can be
    on the device simultaneously, as BigKernel requires; their slowdown from
    sharing the memory system is already folded into the stage costs.
    """

    def __init__(self, spec: GpuSpec, env: Environment | None = None):
        self.spec = spec
        self.env = env
        self.compute = Resource(env, capacity=2, name="gpu") if env else None

    # -- occupancy ---------------------------------------------------------
    def max_active_blocks(self, req: BlockResources) -> int:
        """Hardware bound on simultaneously resident thread blocks.

        ``min`` over the three per-SM resource constraints (threads, shared
        memory, registers) times the SM count — the runtime part of the
        paper's hybrid compile-time/run-time active-block formula.
        """
        if req.threads < 1 or req.threads > self.spec.max_threads_per_block:
            raise HardwareError(
                f"block thread count {req.threads} outside (0, "
                f"{self.spec.max_threads_per_block}]"
            )
        by_threads = self.spec.max_threads_per_sm // req.threads
        by_smem = (
            self.spec.shared_mem_per_sm // req.shared_mem_bytes
            if req.shared_mem_bytes
            else by_threads
        )
        regs = req.registers_per_thread * req.threads
        by_regs = self.spec.registers_per_sm // regs if regs else by_threads
        per_sm = min(by_threads, by_smem, by_regs)
        return max(0, per_sm) * self.spec.num_sms

    def active_blocks(self, req: BlockResources, num_set_blocks: int) -> int:
        """Paper Section IV-D: ``min(numSetBlocks, Rgpu / Rtb)``."""
        hw = self.max_active_blocks(req)
        if hw == 0:
            raise HardwareError(
                f"a block needing {req} exceeds per-SM resources of {self.spec.name}"
            )
        return min(num_set_blocks, hw)

    # -- latency hiding ------------------------------------------------------
    def bandwidth_scale(self, total_threads: int) -> float:
        """Fraction of streaming bandwidth reachable with this many threads.

        GPUs need enough in-flight warps to cover DRAM latency; with too few
        resident threads the achieved bandwidth degrades roughly linearly.
        Saturation is modelled at 4 warps per SM scheduler slot (~1024
        threads/SM on the modelled part is full; 1/4 of that saturates
        streaming loads).
        """
        saturating = self.spec.num_sms * (self.spec.max_threads_per_sm // 4)
        if total_threads <= 0:
            raise HardwareError("total_threads must be positive")
        return min(1.0, total_threads / saturating)

    # -- timing ---------------------------------------------------------------
    def stage_time(self, cost: KernelCost, total_threads: int | None = None) -> float:
        """Duration of one kernel stage over one chunk (seconds).

        Additive roofline: the Big Data-style kernels modelled here are
        branchy and divergent, which defeats the latency hiding that would
        let arithmetic and memory time fully overlap — so the stage pays
        for both components rather than only the larger one.
        """
        scale = 1.0 if total_threads is None else self.bandwidth_scale(total_threads)
        compute_t = cost.n_ops / self.spec.peak_ops
        traffic = cost.global_bytes / cost.efficiency
        mem_t = traffic / (self.spec.effective_mem_bandwidth * scale)
        return compute_t + mem_t + cost.fixed_overhead

    def launch_overhead(self, n_launches: int = 1) -> float:
        """Fixed driver/runtime cost of ``n_launches`` kernel launches."""
        if n_launches < 0:
            raise HardwareError("n_launches must be non-negative")
        return n_launches * self.spec.kernel_launch_overhead

    def flag_wait_overhead(self, n_waits: int) -> float:
        """Cost of busy-waiting on memory flags ``n_waits`` times.

        Each wait costs at least one global-memory round trip (Section IV-C:
        a single thread polls; the rest barrier).
        """
        return n_waits * self.spec.global_latency
