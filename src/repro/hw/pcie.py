"""PCIe link and DMA-engine model.

The link is full duplex: host-to-device and device-to-host directions are
independent resources. Each direction has a FIFO DMA queue, which preserves
the *in-order transfer* property BigKernel's synchronization exploits: the
completion flag DMAed right after a data buffer cannot arrive before the
data (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.errors import DmaFaultError, HardwareError
from repro.hw.spec import PcieSpec
from repro.sim.core import Environment, Event
from repro.sim.resources import Resource
from repro.sim.sync import Flag
from repro.sim.trace import TraceRecorder

H2D = "h2d"
D2H = "d2h"


@dataclass
class TransferRequest:
    """One DMA job."""

    nbytes: int
    direction: str = H2D
    pinned: bool = True
    label: str = "xfer"
    #: physical DMAs this logical transfer comprises (per-block buffers)
    segments: int = 1
    #: flag to set when the transfer (and everything queued before it on the
    #: same direction) has completed — the paper's trailing flag-copy trick.
    completion_flag: Optional[Flag] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.direction not in (H2D, D2H):
            raise HardwareError(f"direction must be '{H2D}' or '{D2H}'")
        if self.nbytes < 0:
            raise HardwareError("transfer size must be non-negative")


class PcieLink:
    """Simulated full-duplex PCIe link with one FIFO DMA queue per direction."""

    def __init__(
        self,
        env: Environment,
        spec: PcieSpec,
        trace: Optional[TraceRecorder] = None,
        faults=None,
    ):
        self.env = env
        self.spec = spec
        self.trace = trace
        #: optional :class:`~repro.faults.inject.FaultInjector`
        self.faults = faults
        self._channels = {
            H2D: Resource(env, capacity=1, name="pcie-h2d"),
            D2H: Resource(env, capacity=1, name="pcie-d2h"),
        }
        self.bytes_moved = {H2D: 0, D2H: 0}
        self.transfer_count = {H2D: 0, D2H: 0}
        #: bytes burnt by failed (retried) DMA attempts — deliberately kept
        #: out of ``bytes_moved``, which counts delivered payload only
        self.bytes_retried = {H2D: 0, D2H: 0}

    def transfer_time(
        self, nbytes: int, pinned: bool = True, segments: int = 1
    ) -> float:
        """Pure duration of one logical transfer, without queueing."""
        return self.spec.transfer_time(nbytes, pinned, segments)

    def transfer(self, req: TransferRequest) -> Event:
        """Enqueue ``req`` on its direction's DMA engine.

        Returns the process event; it succeeds (with the request) when the
        DMA completes. FIFO ordering per direction is guaranteed by the
        underlying resource.
        """
        return self.env.process(self._do_transfer(req))

    def _attempt_time(self, req: TransferRequest) -> float:
        """Duration of one DMA attempt, honouring any injected degradation
        in effect at its start (clean path: identical to transfer_time)."""
        if self.faults is not None:
            return self.faults.transfer_time(
                self.spec, req.nbytes, req.pinned, req.segments, self.env.now
            )
        return self.transfer_time(req.nbytes, req.pinned, req.segments)

    def _do_transfer(self, req: TransferRequest) -> Generator:
        channel = self._channels[req.direction]
        inj = self.faults
        with channel.request() as grant:
            yield grant
            # Injected DMA errors: the failed attempts and their backoffs
            # run while the channel grant is held — releasing it would let
            # the trailing completion-flag DMA overtake the data on the
            # FIFO, breaking the in-order trick of Section IV-C.
            outcome = None
            if inj is not None and not req.label.endswith("-flag"):
                outcome = inj.dma_outcome(
                    req.label, req.direction, req.meta.get("chunk")
                )
            if outcome is not None:
                for attempt, backoff in enumerate(outcome.backoffs, start=1):
                    start = self.env.now
                    yield self.env.timeout(self._attempt_time(req))
                    self.bytes_retried[req.direction] += req.nbytes
                    inj.note_retry()
                    if self.trace is not None:
                        # a distinct label and no ``nbytes`` key keep the
                        # byte-conservation checkers honest: failed attempts
                        # deliver nothing
                        self.trace.record(
                            f"pcie-{req.direction}",
                            f"{req.label}-retry",
                            start,
                            self.env.now,
                            retry=True,
                            attempt=attempt,
                            discarded=req.nbytes,
                            **req.meta,
                        )
                    if backoff > 0:
                        yield self.env.timeout(backoff)
                if outcome.fatal:
                    inj.note_fatal()
                    raise DmaFaultError(
                        f"DMA {req.label!r} (chunk {req.meta.get('chunk')}, "
                        f"{req.direction}) failed permanently after "
                        f"{len(outcome.backoffs)} attempt(s)"
                    )
            start = self.env.now
            yield self.env.timeout(self._attempt_time(req))
            self.bytes_moved[req.direction] += req.nbytes
            self.transfer_count[req.direction] += 1
            if self.trace is not None:
                self.trace.record(
                    f"pcie-{req.direction}",
                    req.label,
                    start,
                    self.env.now,
                    nbytes=req.nbytes,
                    pinned=req.pinned,
                    **req.meta,
                )
        if req.completion_flag is not None:
            req.completion_flag.set(req)
        return req


class DmaEngine:
    """Convenience front end issuing transfers + trailing completion flags.

    Mirrors the CUDA-stream idiom in the paper: ``cudaMemcpyAsync(data)``
    followed by a tiny flag copy that the GPU-side consumer polls.
    """

    def __init__(self, link: PcieLink):
        self.link = link
        self.env = link.env

    def copy_async(
        self,
        nbytes: int,
        direction: str = H2D,
        pinned: bool = True,
        label: str = "xfer",
        segments: int = 1,
        **meta: Any,
    ) -> Event:
        """Queue one logical transfer; returns its completion event."""
        return self.link.transfer(
            TransferRequest(nbytes, direction, pinned, label, segments, meta=meta)
        )

    def copy_with_flag(
        self,
        nbytes: int,
        flag: Flag,
        direction: str = H2D,
        pinned: bool = True,
        label: str = "xfer",
        flag_bytes: int = 4,
        segments: int = 1,
        **meta: Any,
    ) -> Event:
        """Queue a data DMA immediately followed by a flag-write DMA.

        Because the direction's queue is FIFO, the flag is set only after
        the data transfer has fully landed — the in-order trick from
        Section IV-C. Returns the completion event of the *data* transfer.
        """
        data_done = self.link.transfer(
            TransferRequest(nbytes, direction, pinned, label, segments, meta=meta)
        )
        self.link.transfer(
            TransferRequest(
                flag_bytes,
                direction,
                pinned=True,
                label=f"{label}-flag",
                completion_flag=flag,
                # carry the data DMA's identity (chunk/block) so trace
                # checkers can pair each flag with the transfer it chases
                meta=dict(meta),
            )
        )
        return data_done
