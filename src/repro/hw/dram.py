"""Host DRAM helper formulas shared by the CPU cost model and tests."""

from __future__ import annotations

from repro.errors import HardwareError


def random_access_bandwidth(cache_line: int, miss_latency: float) -> float:
    """Achieved bytes/s when every access misses and fetches one line."""
    if cache_line <= 0 or miss_latency <= 0:
        raise HardwareError("cache_line and miss_latency must be positive")
    return cache_line / miss_latency


def blended_read_bandwidth(
    hit_rate: float, stream_bandwidth: float, miss_bandwidth: float
) -> float:
    """Effective bandwidth of a read stream with the given hit rate.

    Time-weighted harmonic blend: each byte costs ``hit/bw_s + miss/bw_m``.
    """
    if not 0.0 <= hit_rate <= 1.0:
        raise HardwareError(f"hit_rate must be in [0,1], got {hit_rate}")
    if stream_bandwidth <= 0 or miss_bandwidth <= 0:
        raise HardwareError("bandwidths must be positive")
    per_byte = hit_rate / stream_bandwidth + (1.0 - hit_rate) / miss_bandwidth
    return 1.0 / per_byte
