"""Modeled GPU page table for the unified-memory engines.

Tracks the residency state of every page of the mapped range under a
fixed device-memory capacity: pages are ``ABSENT`` (host-only),
``INFLIGHT`` (migration DMA queued), or ``RESIDENT`` (device copy valid,
possibly dirty). Eviction is strict LRU over the resident set, skipping
pinned pages (the batch currently being computed on) — in-flight pages
occupy capacity but are never eviction victims.

The table also keeps the byte-conservation ledger the property tests
reconcile: every migrated, evicted, and written-back byte is counted
here, so ``migrated_bytes == evicted_bytes + resident_bytes()`` holds at
any instant and ``bytes_h2d`` of a run equals ``migrated_bytes``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.errors import HardwareError

#: residency states (bytearray-encoded)
ABSENT, INFLIGHT, RESIDENT = 0, 1, 2


class PageTable:
    """Residency + LRU + dirty tracking over a paged mapped range."""

    def __init__(self, total_bytes: int, page_bytes: int, capacity_pages: int):
        if total_bytes < 1:
            raise HardwareError("page table needs a non-empty mapped range")
        if page_bytes < 1:
            raise HardwareError("page_bytes must be positive")
        if capacity_pages < 1:
            raise HardwareError("capacity_pages must be positive")
        self.total_bytes = int(total_bytes)
        self.page_bytes = int(page_bytes)
        self.capacity_pages = int(capacity_pages)
        self.n_pages = -(-self.total_bytes // self.page_bytes)
        self._state = bytearray(self.n_pages)
        self._dirty = bytearray(self.n_pages)
        #: resident pages in LRU order (oldest first)
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self._pinned: set[int] = set()
        #: INFLIGHT + RESIDENT pages (capacity consumers)
        self._held = 0
        # conservation ledger
        self.demand_pages = 0
        self.prefetched_pages = 0
        self.migrated_pages = 0
        self.migrated_bytes = 0
        self.evicted_pages = 0
        self.evicted_bytes = 0
        self.writeback_pages = 0
        self.writeback_bytes = 0

    # ------------------------------------------------------------ geometry
    def page_size(self, page: int) -> int:
        """Bytes of ``page`` (the last page may be partial)."""
        if not 0 <= page < self.n_pages:
            raise HardwareError(f"page {page} outside [0, {self.n_pages})")
        return min(self.page_bytes, self.total_bytes - page * self.page_bytes)

    def page_runs(self, pages: Iterable[int]) -> list[tuple[int, int, int]]:
        """Merge ``pages`` into contiguous ``(first, count, nbytes)`` runs —
        one DMA per run models the driver coalescing grouped faults."""
        runs: list[tuple[int, int, int]] = []
        for p in sorted(pages):
            if runs and runs[-1][0] + runs[-1][1] == p:
                first, count, nbytes = runs[-1]
                runs[-1] = (first, count + 1, nbytes + self.page_size(p))
            else:
                runs.append((p, 1, self.page_size(p)))
        return runs

    # ------------------------------------------------------------ queries
    def missing(self, pages: Iterable[int]) -> list[int]:
        """The subset of ``pages`` that is neither resident nor in flight."""
        return [p for p in pages if self._state[p] == ABSENT]

    def resident_bytes(self) -> int:
        return sum(self.page_size(p) for p in self._lru)

    # ------------------------------------------------------------ protocol
    def admit(
        self, pages: list[int], must: bool = True, kind: str = "demand"
    ) -> Optional[list[tuple[int, int, bool]]]:
        """Reserve capacity for ``pages`` and mark them in flight.

        Evicts LRU non-pinned resident pages as needed and returns the
        victims as ``(page, nbytes, was_dirty)`` (dirty victims must be
        written back by the caller). With ``must=False`` the call is
        all-or-nothing best effort: returns None, state untouched, when
        not enough victims exist (prefetch admission). ``must=True``
        raises instead — the engine sizes windows so that demand
        admission is always feasible."""
        for p in pages:
            if self._state[p] != ABSENT:
                raise HardwareError(f"page {p} admitted while not absent")
        need = self._held + len(pages) - self.capacity_pages
        victims: list[int] = []
        if need > 0:
            evictable = [p for p in self._lru if p not in self._pinned]
            if len(evictable) < need:
                if must:
                    raise HardwareError(
                        f"page table wedged: need {need} eviction(s), only "
                        f"{len(evictable)} unpinned resident page(s)"
                    )
                return None
            victims = evictable[:need]
        out = []
        for v in victims:
            nbytes = self.page_size(v)
            dirty = bool(self._dirty[v])
            del self._lru[v]
            self._state[v] = ABSENT
            self._dirty[v] = 0
            self._held -= 1
            self.evicted_pages += 1
            self.evicted_bytes += nbytes
            if dirty:
                self.writeback_pages += 1
                self.writeback_bytes += nbytes
            out.append((v, nbytes, dirty))
        for p in pages:
            self._state[p] = INFLIGHT
            self._held += 1
        if kind == "demand":
            self.demand_pages += len(pages)
        else:
            self.prefetched_pages += len(pages)
        return out

    def complete(self, pages: Iterable[int]) -> None:
        """Migration DMA landed: in-flight pages become resident (MRU)."""
        for p in pages:
            if self._state[p] != INFLIGHT:
                raise HardwareError(f"page {p} completed while not in flight")
            self._state[p] = RESIDENT
            self._lru[p] = None
            self.migrated_pages += 1
            self.migrated_bytes += self.page_size(p)

    def touch(self, pages: Iterable[int], dirty: bool = False) -> None:
        """Computation accessed ``pages``: refresh LRU, optionally dirty.

        Page granularity means a writer app dirties the *whole* page —
        UVM cannot distinguish sub-page writes."""
        for p in pages:
            if self._state[p] != RESIDENT:
                raise HardwareError(f"page {p} touched while not resident")
            self._lru.move_to_end(p)
            if dirty:
                self._dirty[p] = 1

    def pin(self, pages: Iterable[int]) -> None:
        """Exempt ``pages`` from eviction (the batch being computed on)."""
        self._pinned.update(pages)

    def unpin(self, pages: Iterable[int]) -> None:
        self._pinned.difference_update(pages)

    def take_dirty(self, pages: Optional[Iterable[int]] = None) -> list[int]:
        """Claim dirty resident pages (all, or among ``pages``) for
        write-back: clears their dirty bits and counts the bytes."""
        scan = list(self._lru) if pages is None else list(pages)
        out = []
        for p in scan:
            if self._state[p] == RESIDENT and self._dirty[p]:
                self._dirty[p] = 0
                self.writeback_pages += 1
                self.writeback_bytes += self.page_size(p)
                out.append(p)
        return out

    def stats(self) -> dict:
        """The conservation ledger, for run notes and property tests."""
        return {
            "n_pages": self.n_pages,
            "capacity_pages": self.capacity_pages,
            "demand_pages": self.demand_pages,
            "prefetched_pages": self.prefetched_pages,
            "migrated_pages": self.migrated_pages,
            "migrated_bytes": self.migrated_bytes,
            "evicted_pages": self.evicted_pages,
            "evicted_bytes": self.evicted_bytes,
            "writeback_pages": self.writeback_pages,
            "writeback_bytes": self.writeback_bytes,
            "resident_bytes": self.resident_bytes(),
        }
