"""Hardware cost models for the simulated heterogeneous substrate.

The paper's testbed was a GTX 680 + Xeon E5 + PCIe Gen3 x16 machine. This
package models those parts analytically — each model converts *counted work*
(bytes moved, memory transactions, arithmetic ops) into simulated durations —
and exposes them as resources on the discrete-event timeline so that
concurrency (double-buffering overlap, the 4-stage pipeline) emerges from
simulation rather than being asserted.
"""

from repro.hw.spec import (
    GpuSpec,
    CpuSpec,
    PcieSpec,
    HardwareSpec,
    GTX680,
    XEON_E5,
    PCIE_GEN3_X16,
    DEFAULT_HARDWARE,
)
from repro.hw.coalescing import (
    AccessPattern,
    transactions_for_warp,
    warp_transactions_analytic,
    coalescing_efficiency,
)
from repro.hw.gpu import GpuDevice, KernelCost
from repro.hw.gpu_memory import GpuMemoryAllocator, Allocation
from repro.hw.pcie import PcieLink, DmaEngine, TransferRequest
from repro.hw.cpu import CpuDevice
from repro.hw.cache import CacheSim, analytic_hit_rate
from repro.hw.pinned import PinnedAllocator
from repro.hw.topology import (
    FabricSpec,
    merge_cost,
    node_of_shard,
    shard_mem_bandwidth,
    shard_workers,
    shards_on_node,
    state_nbytes,
)

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "PcieSpec",
    "HardwareSpec",
    "GTX680",
    "XEON_E5",
    "PCIE_GEN3_X16",
    "DEFAULT_HARDWARE",
    "AccessPattern",
    "transactions_for_warp",
    "warp_transactions_analytic",
    "coalescing_efficiency",
    "GpuDevice",
    "KernelCost",
    "GpuMemoryAllocator",
    "Allocation",
    "PcieLink",
    "DmaEngine",
    "TransferRequest",
    "CpuDevice",
    "CacheSim",
    "analytic_hit_rate",
    "PinnedAllocator",
    "FabricSpec",
    "merge_cost",
    "node_of_shard",
    "shard_mem_bandwidth",
    "shard_workers",
    "shards_on_node",
    "state_nbytes",
]
