"""GPU global-memory coalescing model.

When a warp's 32 lanes issue a load together, the memory system fetches
whole aligned *transaction segments* (32 B on the modelled part). If lanes
touch adjacent addresses, few segments cover all of them (coalesced); if
each lane touches a far-apart record, each lane drags in its own segment and
effective bandwidth collapses. This module provides both an exact counter
over concrete address vectors (used by tests and by the trace-driven
validation) and the closed-form strided model the cost estimators use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def transactions_for_warp(
    addresses: np.ndarray,
    elem_bytes: int,
    transaction_bytes: int = 32,
) -> int:
    """Exact count of segments touched by one warp-wide access.

    ``addresses`` holds the byte address each active lane reads;
    each lane touches ``[addr, addr + elem_bytes)``.
    """
    if elem_bytes < 1:
        raise ValueError(f"elem_bytes must be >= 1, got {elem_bytes}")
    if transaction_bytes < 1:
        raise ValueError(f"transaction_bytes must be >= 1, got {transaction_bytes}")
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.size == 0:
        return 0
    segments: set[int] = set()
    first = addrs // transaction_bytes
    last = (addrs + elem_bytes - 1) // transaction_bytes
    for f, l in zip(first.tolist(), last.tolist()):
        segments.update(range(f, l + 1))
    return len(segments)


def warp_transactions_analytic(
    stride_bytes: int,
    elem_bytes: int,
    warp_size: int = 32,
    transaction_bytes: int = 32,
) -> int:
    """Segments per warp access when lane *i* reads ``base + i*stride``.

    Closed form for the common case; equals :func:`transactions_for_warp`
    on the corresponding concrete addresses (property-tested).
    """
    addrs = np.arange(warp_size, dtype=np.int64) * int(stride_bytes)
    return transactions_for_warp(addrs, elem_bytes, transaction_bytes)


def coalescing_efficiency(
    stride_bytes: int,
    elem_bytes: int,
    warp_size: int = 32,
    transaction_bytes: int = 32,
) -> float:
    """Useful-byte fraction of the DRAM traffic a strided warp access causes.

    1.0 means perfectly coalesced (every fetched byte is consumed);
    ``elem/transaction`` is the floor reached when every lane lives in its
    own segment.
    """
    useful = warp_size * elem_bytes
    segs = warp_transactions_analytic(stride_bytes, elem_bytes, warp_size, transaction_bytes)
    fetched = segs * transaction_bytes
    return min(1.0, useful / fetched)


@dataclass(frozen=True)
class AccessPattern:
    """How consecutive GPU threads hit a mapped structure in its *original*
    layout.

    ``record_bytes`` is the distance between the records consecutive threads
    process; ``elem_bytes`` the granularity of a single access. Big records
    (or per-thread contiguous slabs) make ``record_bytes`` large and the
    original layout badly coalesced — exactly the situation BigKernel's
    assembly-stage re-layout fixes (it interleaves data so consecutive
    threads read consecutive ``elem_bytes`` slots, stride == elem).
    """

    elem_bytes: int
    record_bytes: int
    #: fraction of the kernel's global-memory traffic that goes to the
    #: mapped structure (the rest already lives GPU-side and is assumed
    #: reasonably coalesced)
    mapped_fraction: float = 1.0

    def original_efficiency(self, warp_size: int = 32, transaction_bytes: int = 32) -> float:
        """Coalescing efficiency of the untransformed layout."""
        return coalescing_efficiency(
            self.record_bytes, self.elem_bytes, warp_size, transaction_bytes
        )

    def bigkernel_efficiency(self, warp_size: int = 32, transaction_bytes: int = 32) -> float:
        """Efficiency after the assembly stage interleaves per-thread data.

        The prefetch buffer stores, at time step *t*, the t-th element of
        every thread adjacently (Section III, data assembly), so lane stride
        equals the element size.
        """
        return coalescing_efficiency(
            self.elem_bytes, self.elem_bytes, warp_size, transaction_bytes
        )

    def kernel_efficiency(
        self,
        coalesced_layout: bool,
        warp_size: int = 32,
        transaction_bytes: int = 32,
    ) -> float:
        """Blended efficiency over mapped + resident traffic."""
        mapped = (
            self.bigkernel_efficiency(warp_size, transaction_bytes)
            if coalesced_layout
            else self.original_efficiency(warp_size, transaction_bytes)
        )
        resident = 1.0
        f = self.mapped_fraction
        # Harmonic blend: total bytes fetched = useful/(efficiency), summed.
        return 1.0 / (f / mapped + (1.0 - f) / resident)
