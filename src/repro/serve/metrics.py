"""Counters and latency statistics for one server lifetime."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _tenant_bucket() -> dict:
    return {"submitted": 0, "completed": 0, "rejected": 0, "failed": 0}


@dataclass
class ServeMetrics:
    """Everything the server counts; accounting identities hold at all times:

    ``submitted == admitted + rejected`` and, once the queue is drained,
    ``admitted == served + coalesced + cached + failed``.
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    #: batch leaders — unique jobs the engines actually executed
    served: int = 0
    #: followers whose result was shared from a leader in the same batch
    coalesced: int = 0
    #: exact repeats short-circuited by the run cache (zero engine runs)
    cached: int = 0
    failed: int = 0
    #: dispatch rounds that executed at least one request
    batches: int = 0
    largest_batch: int = 0
    #: unique (dataset, config) jobs handed to an engine — the quantity the
    #: cache and coalescer exist to minimize
    engine_runs: int = 0
    #: inline-oracle mismatches (only counted when the server verifies)
    verify_failures: int = 0
    verified: int = 0
    per_tenant: dict = field(default_factory=dict)
    #: completion − arrival of every completed request, in trace seconds
    latencies: list = field(default_factory=list)
    per_tenant_completed_share: dict = field(default_factory=dict)

    # ------------------------------------------------------------- updates
    def tenant(self, name: str) -> dict:
        return self.per_tenant.setdefault(name, _tenant_bucket())

    def observe_completion(self, tenant: str, latency: float, status: str) -> None:
        bucket = self.tenant(tenant)
        if status == "failed":
            bucket["failed"] += 1
        else:
            bucket["completed"] += 1
            self.latencies.append(latency)

    # ------------------------------------------------------------- queries
    @property
    def completed(self) -> int:
        """Requests that got a result (by any path)."""
        return self.served + self.coalesced + self.cached

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def completed_share(self) -> dict:
        """Fraction of all completed+failed requests per tenant (fairness)."""
        totals = {
            name: b["completed"] + b["failed"] for name, b in self.per_tenant.items()
        }
        grand = sum(totals.values())
        if not grand:
            return {}
        return {name: n / grand for name, n in totals.items()}

    def summary(self) -> str:
        lines = [
            f"submitted={self.submitted} admitted={self.admitted} "
            f"rejected={self.rejected}",
            f"served={self.served} coalesced={self.coalesced} "
            f"cached={self.cached} failed={self.failed}",
            f"batches={self.batches} largest={self.largest_batch} "
            f"engine_runs={self.engine_runs}",
        ]
        if self.latencies:
            lines.append(f"latency p50={self.p50:.4f}s p99={self.p99:.4f}s")
        if self.verified:
            lines.append(
                f"verified={self.verified} failures={self.verify_failures}"
            )
        for name in sorted(self.per_tenant):
            b = self.per_tenant[name]
            lines.append(
                f"  tenant {name}: submitted={b['submitted']} "
                f"completed={b['completed']} rejected={b['rejected']} "
                f"failed={b['failed']}"
            )
        return "\n".join(lines)
