"""Counters and latency statistics for one server lifetime."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


def _tenant_bucket() -> dict:
    return {
        "submitted": 0,
        "completed": 0,
        "rejected": 0,
        "failed": 0,
        "shed": 0,
        "slo_met": 0,
        "slo_missed": 0,
    }


@dataclass
class ServeMetrics:
    """Everything the server counts; accounting identities hold at all times:

    ``submitted == admitted + rejected`` and, once the queue is drained,
    ``admitted == served + coalesced + cached + failed + shed``. When SLOs
    are in play, ``slo_total == slo_met + slo_missed + shed_slo + rejected
    (deadline-carrying)`` once everything has reached a terminal state.
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    #: rejections issued because the *priced* backlog already made the
    #: deadline unreachable (a subset of ``rejected``; the rest are
    #: queue-full rejections)
    rejected_predicted: int = 0
    #: batch leaders — unique jobs the engines actually executed
    served: int = 0
    #: followers whose result was shared from a leader in the same batch
    coalesced: int = 0
    #: exact repeats short-circuited by the run cache (zero engine runs)
    cached: int = 0
    failed: int = 0
    #: admitted requests dropped at dispatch time because their deadline had
    #: already passed on the serving clock (no engine run was burned)
    shed: int = 0
    #: dispatch rounds that executed at least one request
    batches: int = 0
    largest_batch: int = 0
    #: unique (dataset, config) jobs handed to an engine — the quantity the
    #: cache and coalescer exist to minimize
    engine_runs: int = 0
    #: inline-oracle mismatches (only counted when the server verifies)
    verify_failures: int = 0
    verified: int = 0
    #: requests submitted with a finite deadline (SLO attainment denominator)
    slo_total: int = 0
    #: completed requests that met their deadline
    slo_met: int = 0
    #: completed requests that finished past their deadline
    slo_missed: int = 0
    per_tenant: dict = field(default_factory=dict)
    #: completion − arrival of every completed request, in trace seconds
    latencies: list = field(default_factory=list)
    #: per-tenant completion latencies (p99-by-tenant accounting)
    tenant_latencies: dict = field(default_factory=dict)
    per_tenant_completed_share: dict = field(default_factory=dict)

    # ------------------------------------------------------------- updates
    def tenant(self, name: str) -> dict:
        bucket = self.per_tenant.get(name)
        if bucket is None:
            bucket = self.per_tenant[name] = _tenant_bucket()
        else:
            # buckets persisted from an older metrics snapshot gain the new
            # keys lazily so accounting code can index them unconditionally
            for key, zero in _tenant_bucket().items():
                bucket.setdefault(key, zero)
        return bucket

    def observe_completion(
        self,
        tenant: str,
        latency: float,
        status: str,
        deadline: float = math.inf,
        completion: float = math.nan,
    ) -> None:
        bucket = self.tenant(tenant)
        if status == "failed":
            bucket["failed"] += 1
        elif status == "shed":
            bucket["shed"] += 1
        else:
            bucket["completed"] += 1
            self.latencies.append(latency)
            self.tenant_latencies.setdefault(tenant, []).append(latency)
            if math.isfinite(deadline):
                if completion <= deadline:
                    self.slo_met += 1
                    bucket["slo_met"] += 1
                else:
                    self.slo_missed += 1
                    bucket["slo_missed"] += 1

    # ------------------------------------------------------------- queries
    @property
    def completed(self) -> int:
        """Requests that got a result (by any path)."""
        return self.served + self.coalesced + self.cached

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), q))

    def tenant_percentile(self, name: str, q: float) -> float:
        """Latency percentile over one tenant's completions."""
        lats = self.tenant_latencies.get(name)
        if not lats:
            return float("nan")
        return float(np.percentile(np.asarray(lats), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def slo_attainment(self) -> Optional[float]:
        """Fraction of deadline-carrying submissions that met the deadline.

        The denominator is every request submitted with a finite deadline —
        shed, rejected and failed ones count as misses — so the figure is
        honest about load shedding: dropping work can never raise it.
        ``None`` when no request carried a deadline.
        """
        if not self.slo_total:
            return None
        return self.slo_met / self.slo_total

    def completed_share(self) -> dict:
        """Fraction of all completed+failed requests per tenant (fairness)."""
        totals = {
            name: b["completed"] + b["failed"] for name, b in self.per_tenant.items()
        }
        grand = sum(totals.values())
        if not grand:
            return {}
        return {name: n / grand for name, n in totals.items()}

    def summary(self) -> str:
        lines = [
            f"submitted={self.submitted} admitted={self.admitted} "
            f"rejected={self.rejected}"
            + (
                f" (predicted-violation={self.rejected_predicted})"
                if self.rejected_predicted
                else ""
            ),
            f"served={self.served} coalesced={self.coalesced} "
            f"cached={self.cached} failed={self.failed} shed={self.shed}",
            f"batches={self.batches} largest={self.largest_batch} "
            f"engine_runs={self.engine_runs}",
        ]
        if self.latencies:
            lines.append(f"latency p50={self.p50:.4f}s p99={self.p99:.4f}s")
        attainment = self.slo_attainment()
        if attainment is not None:
            lines.append(
                f"slo: met {self.slo_met}/{self.slo_total} "
                f"({100.0 * attainment:.1f}%) missed={self.slo_missed} "
                f"shed={self.shed} predicted-rejections="
                f"{self.rejected_predicted}"
            )
        if self.verified:
            lines.append(
                f"verified={self.verified} failures={self.verify_failures}"
            )
        for name in sorted(self.per_tenant):
            b = self.tenant(name)
            line = (
                f"  tenant {name}: submitted={b['submitted']} "
                f"completed={b['completed']} rejected={b['rejected']} "
                f"failed={b['failed']}"
            )
            if b["shed"] or b["slo_met"] or b["slo_missed"]:
                line += (
                    f" shed={b['shed']} met={b['slo_met']} "
                    f"missed={b['slo_missed']}"
                )
            p99 = self.tenant_percentile(name, 99.0)
            if not math.isnan(p99):
                line += f" p99={p99:.4f}s"
            lines.append(line)
        return "\n".join(lines)
