"""Multi-tenant serving layer: admission, SLO-aware EDF/WDRR scheduling,
online job pricing, launch batching, cross-job template reuse, and
run-cache short-circuit (docs/serving.md)."""

from repro.serve.batcher import Batch, batch_key, coalesce, unique_key
from repro.serve.metrics import ServeMetrics
from repro.serve.pricing import JobPricer
from repro.serve.scheduler import (
    STATUSES,
    ServeConfig,
    ServeOutcome,
    ServeResponse,
    Server,
    oneshot_oracle,
    serve_trace,
)
from repro.serve.workload import (
    DEFAULT_TENANTS,
    ServeRequest,
    TenantSpec,
    TraceSpec,
    engine_spec_by_name,
    generate_trace,
    scale_trace,
    with_slo,
)

__all__ = [
    "Batch",
    "batch_key",
    "coalesce",
    "unique_key",
    "JobPricer",
    "ServeMetrics",
    "STATUSES",
    "ServeConfig",
    "ServeOutcome",
    "ServeResponse",
    "Server",
    "oneshot_oracle",
    "serve_trace",
    "DEFAULT_TENANTS",
    "ServeRequest",
    "TenantSpec",
    "TraceSpec",
    "engine_spec_by_name",
    "generate_trace",
    "scale_trace",
    "with_slo",
]
