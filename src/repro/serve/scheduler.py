"""Multi-tenant serving core: admission, fair scheduling, batched dispatch.

The :class:`Server` owns per-tenant bounded queues. :meth:`Server.submit`
is admission control: when the total backlog reaches ``max_queue`` the
request is rejected immediately (a terminal :class:`ServeResponse`), so
overload degrades by shedding load instead of growing latency without
bound. :meth:`Server.dispatch_round` pulls one dispatch window using
weighted deficit round-robin — each visit credits a tenant
``quantum * weight`` deficit and drains whole requests against it, so
long-run service shares converge to the weights while no tenant starves —
then hands the window to the batcher.

Each batch (same engine variant, app, hardware) runs as one pipeline
pass: exact repeats are short-circuited through the two-tier
:class:`~repro.bench.sweep.RunCache` with *zero* engine runs, duplicate
jobs inside the window collapse onto a single leader run (followers are
``coalesced``), and the surviving unique jobs go through the engine's
:meth:`~repro.engines.base.Engine.run_batch` hook on a *shared* dataset
instance — which is what keeps BigKernel's schedule memoization, the
fastpath template memo and the per-dataset hashes warm across jobs.

:func:`serve_trace` replays an open-loop trace against a server on a
virtual clock: the clock jumps to the next arrival when idle and advances
by the *measured wall time* of each dispatch round, so latencies mix
queueing delay and real service cost in one consistent unit.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import AppData, Application, get_app
from repro.bench.jobs import (
    DatasetSpec,
    EngineSpec,
    JobSpec,
    engine_from_spec,
    run_jobspec,
)
from repro.bench.sweep import DiskCache, RunCache, content_run_key
from repro.engines.base import Engine, RunResult
from repro.errors import ReproError
from repro.serve.batcher import Batch, coalesce
from repro.serve.metrics import ServeMetrics
from repro.serve.workload import DEFAULT_TENANTS, ServeRequest, TenantSpec


@dataclass(frozen=True)
class ServeConfig:
    """Server policy knobs."""

    #: total backlog across tenants before admission control rejects
    max_queue: int = 64
    #: dispatch window size (upper bound on one round's batch)
    max_batch: int = 8
    #: deficit credited per WDRR visit is ``quantum * weight``
    quantum: float = 1.0
    #: run-result caching (memory tier always; disk tier via disk_cache)
    cache: bool = True
    disk_cache: bool = False
    #: compare every completed response against a fresh one-shot oracle
    verify: bool = False
    #: worker processes for backend="process"
    jobs: int = 1
    #: "thread" executes in-process through run_batch (amortized);
    #: "process" ships unique jobs to a worker pool (parallel)
    backend: str = "thread"
    #: generated datasets kept live (LRU) for cross-request reuse
    dataset_pool: int = 8

    def __post_init__(self):
        if self.max_queue < 1 or self.max_batch < 1:
            raise ReproError("max_queue and max_batch must be >= 1")
        if self.quantum <= 0:
            raise ReproError("quantum must be positive")
        if self.backend not in ("thread", "process"):
            raise ReproError("backend must be 'thread' or 'process'")
        if self.jobs < 1:
            raise ReproError("jobs must be >= 1")
        if self.dataset_pool < 1:
            raise ReproError("dataset_pool must be >= 1")


#: terminal states a request can reach
STATUSES = ("served", "coalesced", "cached", "rejected", "failed")


@dataclass
class ServeResponse:
    """Terminal outcome of one request."""

    req_id: int
    tenant: str
    #: one of :data:`STATUSES`
    status: str
    arrival: float
    dispatch: float = math.nan
    completion: float = math.nan
    batch_id: int = -1
    error: Optional[str] = None
    result: Optional[RunResult] = field(default=None, repr=False)
    #: the typed failure, kept for judges (chaos serve mode re-grades it)
    exception: Optional[Exception] = field(default=None, repr=False)

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


def oneshot_oracle(job: JobSpec) -> RunResult:
    """Fresh one-shot run of a job — new app, newly generated dataset, new
    engine, no caches. The ground truth a served response must bit-match."""
    from repro.apps.datagen import DATAGEN_VERSION

    if job.dataset.version != DATAGEN_VERSION:
        raise ReproError(
            "oracle cannot replay a dataset from another datagen version"
        )
    app = get_app(job.dataset.app)
    data = app.generate(n_bytes=job.dataset.n_bytes, seed=job.dataset.seed)
    return engine_from_spec(job.engine).run(app, data, job.config)


class Server:
    """Admission queue + WDRR scheduler + batched dispatcher."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        tenants: tuple = DEFAULT_TENANTS,
        cache: Optional[RunCache] = None,
    ):
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._weights: dict = {}
        self._deficit: dict = {}
        for tenant in tenants:
            self.register_tenant(tenant)
        if cache is not None:
            self.cache: Optional[RunCache] = cache
        elif self.config.cache:
            disk = DiskCache() if self.config.disk_cache else None
            self.cache = RunCache(disk=disk)
        else:
            self.cache = None
        self._datasets: "OrderedDict[DatasetSpec, tuple]" = OrderedDict()
        self._engines: dict = {}
        self._oracles: dict = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._batch_seq = 0

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------- admission
    def register_tenant(self, tenant: TenantSpec) -> None:
        if tenant.name not in self._queues:
            self._queues[tenant.name] = deque()
            self._deficit[tenant.name] = 0.0
        self._weights[tenant.name] = tenant.weight

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def submit(self, req: ServeRequest, now: float = 0.0) -> Optional[ServeResponse]:
        """Admit a request, or reject it when the backlog is full.

        Returns the terminal rejection response, or ``None`` on admission
        (the response then comes out of a later :meth:`dispatch_round`).
        """
        if req.tenant not in self._queues:
            self.register_tenant(TenantSpec(req.tenant, 1.0))
        self.metrics.submitted += 1
        bucket = self.metrics.tenant(req.tenant)
        bucket["submitted"] += 1
        if self.pending() >= self.config.max_queue:
            self.metrics.rejected += 1
            bucket["rejected"] += 1
            return ServeResponse(
                req_id=req.req_id,
                tenant=req.tenant,
                status="rejected",
                arrival=req.arrival,
                dispatch=now,
                completion=now,
                error="queue full",
            )
        self.metrics.admitted += 1
        self._queues[req.tenant].append(req)
        return None

    # --------------------------------------------------------- scheduling
    def _select_window(self) -> list:
        """One WDRR dispatch window (up to ``max_batch`` requests)."""
        window: list = []
        while len(window) < self.config.max_batch:
            if not any(self._queues.values()):
                break
            for name, queue in self._queues.items():
                if not queue:
                    # an idle tenant banks no credit (standard DRR reset)
                    self._deficit[name] = 0.0
                    continue
                self._deficit[name] += self.config.quantum * self._weights[name]
                while (
                    queue
                    and self._deficit[name] >= 1.0
                    and len(window) < self.config.max_batch
                ):
                    window.append(queue.popleft())
                    self._deficit[name] -= 1.0
                if len(window) >= self.config.max_batch:
                    break
        return window

    def dispatch_round(self, now: float = 0.0) -> list:
        """Select one window, execute it as batches, return its responses.

        Responses carry ``dispatch`` stamps but no ``completion`` — the
        caller knows when the round finished (wall-measured or virtual)
        and must pass the responses through :meth:`finish`.
        """
        window = self._select_window()
        if not window:
            return []
        responses: dict = {}
        for batch in coalesce(window):
            responses.update(self._execute_batch(batch, now))
        return [responses[req.req_id] for req in window]

    def finish(self, responses: list, completion: float) -> None:
        """Stamp completion times and fold the round into the metrics."""
        for resp in responses:
            resp.completion = completion
            self.metrics.observe_completion(
                resp.tenant, resp.completion - resp.arrival, resp.status
            )

    def drain(self, now: float = 0.0) -> list:
        """Dispatch until the backlog is empty (no clock; completion=now)."""
        out: list = []
        while self.pending():
            round_resps = self.dispatch_round(now=now)
            self.finish(round_resps, now)
            out.extend(round_resps)
        return out

    # ---------------------------------------------------------- execution
    def _dataset(self, spec: DatasetSpec) -> tuple:
        """(app, data) for a recipe, via the server's LRU dataset pool.

        Sharing one live ``AppData`` instance across requests is what lets
        the engine-side memos (schedule, fastpath template, dataset hash)
        hit: they all key on the instance fingerprint."""
        cached = self._datasets.get(spec)
        if cached is not None:
            self._datasets.move_to_end(spec)
            return cached
        from repro.apps.datagen import DATAGEN_VERSION

        if spec.version != DATAGEN_VERSION:
            raise ReproError(
                f"dataset spec for {spec.app!r} was made with datagen version "
                f"{spec.version}, server has {DATAGEN_VERSION}"
            )
        app = get_app(spec.app)
        data = app.generate(n_bytes=spec.n_bytes, seed=spec.seed)
        self._datasets[spec] = (app, data)
        while len(self._datasets) > self.config.dataset_pool:
            self._datasets.popitem(last=False)
        return app, data

    def _engine(self, spec: EngineSpec) -> Engine:
        engine = self._engines.get(spec)
        if engine is None:
            engine = self._engines[spec] = engine_from_spec(spec)
        return engine

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.config.jobs)
        return self._executor

    def _terminal(
        self, req: ServeRequest, status: str, batch_id: int, now: float
    ) -> ServeResponse:
        return ServeResponse(
            req_id=req.req_id,
            tenant=req.tenant,
            status=status,
            arrival=req.arrival,
            dispatch=now,
            batch_id=batch_id,
        )

    def _execute_batch(self, batch: Batch, now: float) -> dict:
        """Run one compatibility batch; returns req_id -> response."""
        batch_id = self._batch_seq
        self._batch_seq += 1
        self.metrics.batches += 1
        self.metrics.largest_batch = max(
            self.metrics.largest_batch, len(batch.requests)
        )
        engine = self._engine(batch.engine_spec)
        responses: dict = {}
        verify_items: list = []

        # cache probe per unique job; exact repeats never reach the engine
        to_run: list = []
        for reqs in batch.unique_jobs().values():
            job = reqs[0].job
            try:
                app, data = self._dataset(job.dataset)
            except ReproError as exc:
                for req in reqs:
                    responses[req.req_id] = self._fail(req, batch_id, now, exc)
                continue
            key = disk_key = None
            hit = None
            if self.cache is not None:
                key = RunCache.key(engine, app, data, job.config)
                if self.cache.disk is not None and self.cache.disk.enabled:
                    disk_key = content_run_key(engine, app, data, job.config)
                hit = self.cache.get(key, disk_key)
            if hit is not None:
                for req in reqs:
                    resp = self._terminal(req, "cached", batch_id, now)
                    resp.result = hit
                    self.metrics.cached += 1
                    responses[req.req_id] = resp
                    verify_items.append((job, resp))
            else:
                to_run.append((reqs, app, data, key, disk_key))

        outcomes = self._run_unique(engine, to_run)
        for (reqs, app, data, key, disk_key), outcome in zip(to_run, outcomes):
            job = reqs[0].job
            if isinstance(outcome, Exception):
                for req in reqs:
                    responses[req.req_id] = self._fail(req, batch_id, now, outcome)
                continue
            self.metrics.engine_runs += 1
            if self.cache is not None:
                self.cache.put(key, outcome, disk_key)
            for pos, req in enumerate(reqs):
                status = "served" if pos == 0 else "coalesced"
                resp = self._terminal(req, status, batch_id, now)
                resp.result = outcome
                if status == "served":
                    self.metrics.served += 1
                else:
                    self.metrics.coalesced += 1
                responses[req.req_id] = resp
                verify_items.append((job, resp))

        if self.config.verify:
            for job, resp in verify_items:
                self._verify_one(job, resp)
        return responses

    def _fail(
        self, req: ServeRequest, batch_id: int, now: float, exc: Exception
    ) -> ServeResponse:
        resp = self._terminal(req, "failed", batch_id, now)
        resp.error = f"{type(exc).__name__}: {exc}"
        resp.exception = exc
        self.metrics.failed += 1
        return resp

    def _run_unique(self, engine: Engine, to_run: list) -> list:
        """Execute unique jobs; one outcome (result or exception) each."""
        if not to_run:
            return []
        if (
            self.config.backend == "process"
            and self.config.jobs > 1
            and len(to_run) > 1
        ):
            futures = [
                self._pool().submit(run_jobspec, reqs[0].job)
                for reqs, *_ in to_run
            ]
            outcomes: list = []
            for future in futures:
                try:
                    outcomes.append(future.result())
                except ReproError as exc:
                    outcomes.append(exc)
            return outcomes

        # in-process: group by dataset instance so the engine's batch entry
        # can amortize state across the configs of one dataset
        outcomes = [None] * len(to_run)
        by_data: "OrderedDict[int, list]" = OrderedDict()
        for i, (_reqs, _app, data, *_rest) in enumerate(to_run):
            by_data.setdefault(id(data), []).append(i)
        for idxs in by_data.values():
            _reqs0, app, data, *_rest = to_run[idxs[0]]
            configs = [to_run[i][0][0].job.config for i in idxs]
            try:
                results = engine.run_batch(app, data, configs)
                for i, result in zip(idxs, results):
                    outcomes[i] = result
            except ReproError:
                # one poisoned config sank the batch: retry one-by-one so
                # only the genuinely failing jobs fail
                for i in idxs:
                    try:
                        outcomes[i] = engine.run(app, data, to_run[i][0][0].job.config)
                    except ReproError as exc:
                        outcomes[i] = exc
        return outcomes

    # -------------------------------------------------------- verification
    def _verify_one(self, job: JobSpec, resp: ServeResponse) -> None:
        """Bit-compare a completed response against its one-shot oracle."""
        okey = (job.dataset, job.engine, job.config)
        oracle = self._oracles.get(okey)
        if oracle is None:
            oracle = self._oracles[okey] = oneshot_oracle(job)
        self.metrics.verified += 1
        ok = resp.result.sim_time == oracle.sim_time
        if job.config.functional:
            app = get_app(job.dataset.app)
            ok = ok and app.outputs_equal(resp.result.output, oracle.output)
        if not ok:
            self.metrics.verify_failures += 1
            resp.error = "served result diverges from its one-shot oracle"


@dataclass
class ServeOutcome:
    """Result of replaying one trace against one server."""

    responses: list
    metrics: ServeMetrics
    #: virtual seconds from trace start to the last completion
    makespan: float
    #: summed measured wall time of all dispatch rounds
    wall_seconds: float

    @property
    def jobs_per_sec(self) -> float:
        """Sustained completion throughput over the virtual makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.metrics.completed / self.makespan

    def summary(self) -> str:
        lines = [
            f"makespan={self.makespan:.3f}s wall={self.wall_seconds:.3f}s "
            f"throughput={self.jobs_per_sec:.2f} jobs/s",
            self.metrics.summary(),
        ]
        return "\n".join(lines)


def serve_trace(
    server: Server, requests: list, timer=time.perf_counter
) -> ServeOutcome:
    """Replay an open-loop trace on a virtual clock.

    The clock jumps forward to the next arrival whenever the server goes
    idle, and advances by the *measured* wall duration of every dispatch
    round. All arrivals at or before the current clock are admitted before
    each round, so overload (arrivals outpacing service) fills the queue
    and exercises admission control exactly as a live server would.
    """
    arrivals = sorted(requests, key=lambda r: (r.arrival, r.req_id))
    out: list = []
    clock = 0.0
    wall = 0.0
    i = 0
    n = len(arrivals)
    while i < n or server.pending():
        if not server.pending() and i < n:
            clock = max(clock, arrivals[i].arrival)
        while i < n and arrivals[i].arrival <= clock:
            rejection = server.submit(arrivals[i], now=clock)
            if rejection is not None:
                out.append(rejection)
            i += 1
        if not server.pending():
            continue
        start = timer()
        round_resps = server.dispatch_round(now=clock)
        elapsed = max(timer() - start, 0.0)
        wall += elapsed
        clock += elapsed
        server.finish(round_resps, clock)
        out.extend(round_resps)
    out.sort(key=lambda r: r.req_id)
    return ServeOutcome(
        responses=out, metrics=server.metrics, makespan=clock, wall_seconds=wall
    )
