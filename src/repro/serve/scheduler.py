"""Multi-tenant serving core: admission, cost-aware scheduling, batching.

The :class:`Server` owns per-tenant bounded queues. :meth:`Server.submit`
is admission control: when the total backlog reaches ``max_queue`` the
request is rejected immediately (a terminal :class:`ServeResponse`), so
overload degrades by shedding load instead of growing latency without
bound.  Tenants may carry a latency SLO
(:attr:`~repro.serve.workload.TenantSpec.slo_ms`); every request of an
SLO'd tenant gets the deadline ``arrival + slo`` on the serving clock,
and the scheduler becomes *cost-aware* end to end:

- **Online pricing** — every enqueued job is priced in wall seconds by
  the :class:`~repro.serve.pricing.JobPricer`: the analytic predictor's
  O(1) ``sim_time`` scaled by an EWMA wall/sim ratio the server learns
  from every timed batch (per (app, engine) cell — one batch is exactly
  one cell).  Engines the predictor cannot model (the UVM family) are
  priced from the observed per-run wall EWMA alone.
- **Predictive admission** — a request whose deadline is provably
  unreachable at enqueue (``now`` + priced earlier-deadline backlog +
  its own price exceeds the deadline) is rejected immediately with a
  typed :class:`~repro.errors.SloViolationError` instead of wasting
  queue space and an engine run.  Unpriced backlogs never reject.
- **EDF dispatch** — when any queued request has a finite deadline, the
  window is picked earliest-deadline-first with the WDRR deficit as the
  tiebreak, so equal deadlines still resolve toward the weights.  With
  no deadlines in the queues the window selection *is* the classic
  weighted deficit round-robin, unchanged.
- **Shedding** — a queued request whose deadline has already passed at
  dispatch-pick time is provably doomed (its completion would be ``>=
  now > deadline``), so it is dropped as a typed ``"shed"`` terminal
  without burning an engine run.  Only already-doomed requests shed.
- **Adaptive batching** — with ``adaptive_batch`` the dispatch window
  shrinks so one round's predicted service (per-run wall EWMA x the
  recent unique fraction) fits the tightest deadline slack in queue,
  and grows back to ``max_batch`` when slack is plentiful.

Each batch (same engine variant, app, hardware) runs as one pipeline
pass: exact repeats are short-circuited through the two-tier
:class:`~repro.bench.sweep.RunCache` with *zero* engine runs, duplicate
jobs inside the window collapse onto a single leader run (followers are
``coalesced``), and the surviving unique jobs go through the engine's
:meth:`~repro.engines.base.Engine.run_batch` hook on a *shared* dataset
instance — which is what keeps BigKernel's schedule memoization, the
fastpath template memo and the per-dataset hashes warm across jobs.

:func:`serve_trace` replays an open-loop trace against a server on a
virtual clock: the clock jumps to the next arrival when idle and advances
by the *measured wall time* of each dispatch round, so latencies mix
queueing delay and real service cost in one consistent unit.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import AppData, Application, get_app
from repro.bench.jobs import (
    DatasetSpec,
    EngineSpec,
    JobSpec,
    engine_from_spec,
    run_jobspec,
)
from repro.bench.sweep import DiskCache, RunCache, content_run_key
from repro.engines.base import Engine, RunResult
from repro.errors import ReproError, SloViolationError
from repro.serve.batcher import Batch, batch_key, coalesce, unique_key
from repro.serve.metrics import ServeMetrics
from repro.serve.pricing import JobPricer
from repro.serve.workload import DEFAULT_TENANTS, ServeRequest, TenantSpec


@dataclass(frozen=True)
class ServeConfig:
    """Server policy knobs."""

    #: total backlog across tenants before admission control rejects
    max_queue: int = 64
    #: dispatch window size (upper bound on one round's batch)
    max_batch: int = 8
    #: deficit credited per WDRR visit is ``quantum * weight``
    quantum: float = 1.0
    #: run-result caching (memory tier always; disk tier via disk_cache)
    cache: bool = True
    disk_cache: bool = False
    #: compare every completed response against a fresh one-shot oracle
    verify: bool = False
    #: worker processes for backend="process"
    jobs: int = 1
    #: "thread" executes in-process through run_batch (amortized);
    #: "process" ships unique jobs to a worker pool (parallel)
    backend: str = "thread"
    #: generated datasets kept live (LRU) for cross-request reuse
    dataset_pool: int = 8
    #: "edf" = deadline-aware scheduling (identical to WDRR while no
    #: queued request carries a finite deadline); "fifo" = deadline-blind
    #: global arrival order, the fixed baseline the benchmark beats
    scheduling: str = "edf"
    #: size dispatch windows from priced deadline slack instead of always
    #: coalescing up to max_batch
    adaptive_batch: bool = False
    #: adaptive windows never shrink below this
    min_batch: int = 1

    def __post_init__(self):
        if self.max_queue < 1 or self.max_batch < 1:
            raise ReproError("max_queue and max_batch must be >= 1")
        if self.quantum <= 0:
            raise ReproError("quantum must be positive")
        if self.backend not in ("thread", "process"):
            raise ReproError("backend must be 'thread' or 'process'")
        if self.jobs < 1:
            raise ReproError("jobs must be >= 1")
        if self.dataset_pool < 1:
            raise ReproError("dataset_pool must be >= 1")
        if self.scheduling not in ("edf", "fifo"):
            raise ReproError("scheduling must be 'edf' or 'fifo'")
        if not 1 <= self.min_batch <= self.max_batch:
            raise ReproError("need 1 <= min_batch <= max_batch")


#: terminal states a request can reach
STATUSES = ("served", "coalesced", "cached", "rejected", "failed", "shed")


@dataclass
class ServeResponse:
    """Terminal outcome of one request."""

    req_id: int
    tenant: str
    #: one of :data:`STATUSES`
    status: str
    arrival: float
    dispatch: float = math.nan
    completion: float = math.nan
    batch_id: int = -1
    #: serving-clock deadline (``arrival + slo``; ``inf`` = best-effort)
    deadline: float = math.inf
    error: Optional[str] = None
    result: Optional[RunResult] = field(default=None, repr=False)
    #: the typed failure, kept for judges (chaos serve mode re-grades it)
    exception: Optional[Exception] = field(default=None, repr=False)

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


def oneshot_oracle(job: JobSpec) -> RunResult:
    """Fresh one-shot run of a job — new app, newly generated dataset, new
    engine, no caches. The ground truth a served response must bit-match."""
    from repro.apps.datagen import DATAGEN_VERSION

    if job.dataset.version != DATAGEN_VERSION:
        raise ReproError(
            "oracle cannot replay a dataset from another datagen version"
        )
    app = get_app(job.dataset.app)
    data = app.generate(n_bytes=job.dataset.n_bytes, seed=job.dataset.seed)
    return engine_from_spec(job.engine).run(app, data, job.config)


class Server:
    """Admission queue + deadline/WDRR scheduler + batched dispatcher."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        tenants: tuple = DEFAULT_TENANTS,
        cache: Optional[RunCache] = None,
        pricer: Optional[JobPricer] = None,
    ):
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        #: clock used to time dispatch rounds for pricer calibration;
        #: :func:`serve_trace` installs its own timer so virtual-clock
        #: replays calibrate (and schedule) deterministically when given
        #: a deterministic timer
        self.timer = time.perf_counter
        #: online wall-cost estimator; pass a warmed one to carry
        #: calibration across server lifetimes
        self.pricer = pricer if pricer is not None else JobPricer()
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._weights: dict = {}
        self._deficit: dict = {}
        self._slo: dict = {}
        for tenant in tenants:
            self.register_tenant(tenant)
        if cache is not None:
            self.cache: Optional[RunCache] = cache
        elif self.config.cache:
            disk = DiskCache() if self.config.disk_cache else None
            self.cache = RunCache(disk=disk)
        else:
            self.cache = None
        self._datasets: "OrderedDict[DatasetSpec, tuple]" = OrderedDict()
        self._engines: dict = {}
        self._oracles: dict = {}
        #: req_id -> (deadline, admission price or None) for queued requests
        self._meta: dict = {}
        #: EWMA of unique-jobs / window-size per round (adaptive batching
        #: discounts the window by how much coalescing is expected)
        self._unique_frac = 1.0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._batch_seq = 0

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------- admission
    def register_tenant(self, tenant: TenantSpec) -> None:
        if tenant.name not in self._queues:
            self._queues[tenant.name] = deque()
            self._deficit[tenant.name] = 0.0
        self._weights[tenant.name] = tenant.weight
        self._slo[tenant.name] = tenant.slo_seconds

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _deadline_of(self, req: ServeRequest) -> float:
        return self._meta.get(req.req_id, (math.inf, None))[0]

    def _cache_would_hit(self, job: JobSpec) -> bool:
        """Silent probe: would this job short-circuit through the cache?"""
        if self.cache is None:
            return False
        try:
            app, data = self._dataset(job.dataset)
        except ReproError:
            return False
        engine = self._engine(job.engine)
        return self.cache.contains(RunCache.key(engine, app, data, job.config))

    def _admission_price(self, req: ServeRequest) -> Optional[float]:
        """Predicted wall cost of one enqueued request, cache-aware.

        A job the run cache would short-circuit costs (practically)
        nothing, whatever the model says — without the probe, repeat-heavy
        traces would predictively reject work the server serves for free.
        """
        if self._cache_would_hit(req.job):
            return 0.0
        return self.pricer.price(req.job, self._dataset)

    def _predicted_violation(
        self, req: ServeRequest, deadline: float, price: Optional[float], now: float
    ) -> Optional[str]:
        """Evidence string when the deadline is provably unreachable.

        Conservative: requires the request's own price *and* the price of
        every queued request with an earlier-or-equal deadline (the work
        EDF will serve first).  Any unpriced job in that set vetoes the
        rejection — admission only sheds on evidence, never on a guess.
        """
        if price is None:
            return None
        backlog = 0.0
        for queue in self._queues.values():
            for queued in queue:
                q_deadline, q_price = self._meta.get(
                    queued.req_id, (math.inf, None)
                )
                if q_deadline > deadline:
                    continue
                if q_price is None:
                    return None
                backlog += q_price
        eta = now + backlog + price
        if eta <= deadline:
            return None
        return (
            f"predicted completion {eta:.4f}s > deadline {deadline:.4f}s "
            f"(priced backlog {backlog:.4f}s + service {price:.4f}s "
            f"at t={now:.4f}s)"
        )

    def submit(self, req: ServeRequest, now: float = 0.0) -> Optional[ServeResponse]:
        """Admit a request, or reject it when the backlog is full or its
        deadline is already priced as unreachable.

        Returns the terminal rejection response, or ``None`` on admission
        (the response then comes out of a later :meth:`dispatch_round`).
        """
        if req.tenant not in self._queues:
            self.register_tenant(TenantSpec(req.tenant, 1.0))
        deadline = req.arrival + self._slo.get(req.tenant, math.inf)
        self.metrics.submitted += 1
        bucket = self.metrics.tenant(req.tenant)
        bucket["submitted"] += 1
        if math.isfinite(deadline):
            self.metrics.slo_total += 1
        if self.pending() >= self.config.max_queue:
            self.metrics.rejected += 1
            bucket["rejected"] += 1
            return ServeResponse(
                req_id=req.req_id,
                tenant=req.tenant,
                status="rejected",
                arrival=req.arrival,
                dispatch=now,
                completion=now,
                deadline=deadline,
                error="queue full",
            )
        price: Optional[float] = None
        if self.config.scheduling == "edf" and math.isfinite(deadline):
            price = self._admission_price(req)
            evidence = self._predicted_violation(req, deadline, price, now)
            if evidence is not None:
                self.metrics.rejected += 1
                self.metrics.rejected_predicted += 1
                bucket["rejected"] += 1
                exc = SloViolationError(evidence)
                return ServeResponse(
                    req_id=req.req_id,
                    tenant=req.tenant,
                    status="rejected",
                    arrival=req.arrival,
                    dispatch=now,
                    completion=now,
                    deadline=deadline,
                    error=str(exc),
                    exception=exc,
                )
        self.metrics.admitted += 1
        self._queues[req.tenant].append(req)
        self._meta[req.req_id] = (deadline, price)
        return None

    # --------------------------------------------------------- scheduling
    def _window_limit(self, now: float) -> int:
        """Dispatch window size for this round.

        Fixed at ``max_batch`` unless ``adaptive_batch`` is on and the
        pricer has calibrated: then the window is the largest one whose
        predicted service time (per-run wall x expected unique fraction)
        still fits the tightest deadline slack in the queues — large
        batches amortize while slack is plentiful, small urgent rounds
        ship when a deadline is close.
        """
        cfg = self.config
        if not cfg.adaptive_batch:
            return cfg.max_batch
        per_run = self.pricer.run_wall
        if per_run is None or per_run <= 0.0:
            return cfg.max_batch
        slack = math.inf
        for queue in self._queues.values():
            for queued in queue:
                deadline = self._deadline_of(queued)
                if math.isfinite(deadline):
                    slack = min(slack, deadline - now)
        if not math.isfinite(slack):
            return cfg.max_batch
        if slack <= 0.0:
            return cfg.min_batch
        limit = int(slack / (per_run * max(self._unique_frac, 0.05)))
        return max(cfg.min_batch, min(cfg.max_batch, limit))

    def _select_wdrr(self, limit: int) -> list:
        """One classic WDRR dispatch window (up to ``limit`` requests)."""
        window: list = []
        while len(window) < limit:
            if not any(self._queues.values()):
                break
            for name, queue in self._queues.items():
                if not queue:
                    # an idle tenant banks no credit (standard DRR reset)
                    self._deficit[name] = 0.0
                    continue
                self._deficit[name] += self.config.quantum * self._weights[name]
                while (
                    queue
                    and self._deficit[name] >= 1.0
                    and len(window) < limit
                ):
                    window.append(queue.popleft())
                    self._deficit[name] -= 1.0
                if len(window) >= limit:
                    break
        return window

    def _select_fifo(self, limit: int) -> list:
        """Deadline-blind global arrival order (the baseline policy)."""
        window: list = []
        while len(window) < limit:
            best: Optional[str] = None
            for name, queue in self._queues.items():
                if not queue:
                    continue
                if best is None or (
                    (queue[0].arrival, queue[0].req_id)
                    < (
                        self._queues[best][0].arrival,
                        self._queues[best][0].req_id,
                    )
                ):
                    best = name
            if best is None:
                break
            window.append(self._queues[best].popleft())
        return window

    def _select_edf(self, limit: int) -> list:
        """EDF with WDRR-deficit tiebreak.

        Every pick takes the queue head with the earliest deadline; ties
        resolve to the tenant with the larger banked deficit (then
        registration order), and each pick charges the chosen tenant one
        unit while crediting the other backlogged tenants in proportion
        to their weights — so sustained equal-deadline contention
        converges to the same weighted shares WDRR would give.
        """
        window: list = []
        while len(window) < limit:
            best: Optional[str] = None
            best_key: Optional[tuple] = None
            for idx, (name, queue) in enumerate(self._queues.items()):
                if not queue:
                    self._deficit[name] = 0.0
                    continue
                key = (self._deadline_of(queue[0]), -self._deficit[name], idx)
                if best_key is None or key < best_key:
                    best_key, best = key, name
            if best is None:
                break
            window.append(self._queues[best].popleft())
            self._deficit[best] -= 1.0
            backlogged = [name for name, q in self._queues.items() if q]
            total = sum(self._weights[name] for name in backlogged)
            for name in backlogged:
                cap = 4.0 * max(1.0, self.config.quantum * self._weights[name])
                self._deficit[name] = min(
                    cap, self._deficit[name] + self._weights[name] / total
                )
        return window

    def _shed_doomed(self, now: float) -> list:
        """Remove every queued request whose deadline has already passed.

        Such a request is *provably* doomed: its completion would be
        ``>= now > deadline``, so dropping it can never cost a request
        that would have met its deadline.  Deadline-blind (fifo) servers
        never shed — that is the baseline's burden.
        """
        if self.config.scheduling != "edf":
            return []
        shed: list = []
        for queue in self._queues.values():
            if not queue:
                continue
            keep = [r for r in queue if not now > self._deadline_of(r)]
            if len(keep) != len(queue):
                shed.extend(r for r in queue if now > self._deadline_of(r))
                queue.clear()
                queue.extend(keep)
        return shed

    def _select_window(self, now: float = 0.0) -> list:
        """Pick one dispatch window (up to the adaptive window limit)."""
        limit = self._window_limit(now)
        if self.config.scheduling == "fifo":
            return self._select_fifo(limit)
        if any(
            math.isfinite(self._deadline_of(r))
            for q in self._queues.values()
            for r in q
        ):
            return self._select_edf(limit)
        return self._select_wdrr(limit)

    def dispatch_round(self, now: float = 0.0) -> list:
        """Select one window, execute it as batches, return its responses.

        Responses carry ``dispatch`` stamps but no ``completion`` — the
        caller knows when the round finished (wall-measured or virtual)
        and must pass the responses through :meth:`finish`.  Shed
        requests come back as typed terminals in the same list.
        """
        shed = self._shed_doomed(now)
        window = self._select_window(now)
        out: list = []
        for req in shed:
            resp = self._terminal(req, "shed", -1, now)
            exc = SloViolationError(
                f"deadline {resp.deadline:.4f}s had already passed at "
                f"dispatch time {now:.4f}s"
            )
            resp.error = str(exc)
            resp.exception = exc
            self.metrics.shed += 1
            out.append(resp)
        if window:
            responses: dict = {}
            for batch in coalesce(window):
                responses.update(self._execute_batch(batch, now))
            unique = len({(batch_key(r.job), unique_key(r.job)) for r in window})
            self._unique_frac = 0.7 * self._unique_frac + 0.3 * (
                unique / len(window)
            )
            out.extend(responses[req.req_id] for req in window)
        for req in window + shed:
            self._meta.pop(req.req_id, None)
        return out

    def finish(self, responses: list, completion: float) -> None:
        """Stamp completion times and fold the round into the metrics."""
        for resp in responses:
            resp.completion = completion
            self.metrics.observe_completion(
                resp.tenant,
                resp.completion - resp.arrival,
                resp.status,
                deadline=resp.deadline,
                completion=resp.completion,
            )

    def drain(self, now: float = 0.0) -> list:
        """Dispatch until the backlog is empty (no clock; completion=now)."""
        out: list = []
        while self.pending():
            round_resps = self.dispatch_round(now=now)
            self.finish(round_resps, now)
            out.extend(round_resps)
        return out

    # ---------------------------------------------------------- execution
    def _dataset(self, spec: DatasetSpec) -> tuple:
        """(app, data) for a recipe, via the server's LRU dataset pool.

        Sharing one live ``AppData`` instance across requests is what lets
        the engine-side memos (schedule, fastpath template, dataset hash)
        hit: they all key on the instance fingerprint."""
        cached = self._datasets.get(spec)
        if cached is not None:
            self._datasets.move_to_end(spec)
            return cached
        from repro.apps.datagen import DATAGEN_VERSION

        if spec.version != DATAGEN_VERSION:
            raise ReproError(
                f"dataset spec for {spec.app!r} was made with datagen version "
                f"{spec.version}, server has {DATAGEN_VERSION}"
            )
        app = get_app(spec.app)
        data = app.generate(n_bytes=spec.n_bytes, seed=spec.seed)
        self._datasets[spec] = (app, data)
        while len(self._datasets) > self.config.dataset_pool:
            self._datasets.popitem(last=False)
        return app, data

    def _engine(self, spec: EngineSpec) -> Engine:
        engine = self._engines.get(spec)
        if engine is None:
            engine = self._engines[spec] = engine_from_spec(spec)
        return engine

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.config.jobs)
        return self._executor

    def _terminal(
        self, req: ServeRequest, status: str, batch_id: int, now: float
    ) -> ServeResponse:
        return ServeResponse(
            req_id=req.req_id,
            tenant=req.tenant,
            status=status,
            arrival=req.arrival,
            dispatch=now,
            batch_id=batch_id,
            deadline=self._deadline_of(req),
        )

    def _execute_batch(self, batch: Batch, now: float) -> dict:
        """Run one compatibility batch; returns req_id -> response."""
        batch_id = self._batch_seq
        self._batch_seq += 1
        self.metrics.batches += 1
        self.metrics.largest_batch = max(
            self.metrics.largest_batch, len(batch.requests)
        )
        engine = self._engine(batch.engine_spec)
        responses: dict = {}
        verify_items: list = []

        # cache probe per unique job; exact repeats never reach the engine
        to_run: list = []
        for reqs in batch.unique_jobs().values():
            job = reqs[0].job
            try:
                app, data = self._dataset(job.dataset)
            except ReproError as exc:
                for req in reqs:
                    responses[req.req_id] = self._fail(req, batch_id, now, exc)
                continue
            key = disk_key = None
            hit = None
            if self.cache is not None:
                key = RunCache.key(engine, app, data, job.config)
                if self.cache.disk is not None and self.cache.disk.enabled:
                    disk_key = content_run_key(engine, app, data, job.config)
                hit = self.cache.get(key, disk_key)
            if hit is not None:
                for req in reqs:
                    resp = self._terminal(req, "cached", batch_id, now)
                    resp.result = hit
                    self.metrics.cached += 1
                    responses[req.req_id] = resp
                    verify_items.append((job, resp))
            else:
                to_run.append((reqs, app, data, key, disk_key))

        # timed engine-run section: one batch is one (app, engine) cell,
        # so its wall time is one clean calibration sample for the pricer
        start = self.timer()
        outcomes = self._run_unique(engine, to_run)
        elapsed = max(self.timer() - start, 0.0)
        n_runs = sum(1 for o in outcomes if not isinstance(o, Exception))
        if to_run:
            self.pricer.observe_batch(
                [reqs[0].job for reqs, *_ in to_run],
                elapsed,
                n_runs,
                self._dataset,
            )
        for (reqs, app, data, key, disk_key), outcome in zip(to_run, outcomes):
            job = reqs[0].job
            if isinstance(outcome, Exception):
                for req in reqs:
                    responses[req.req_id] = self._fail(req, batch_id, now, outcome)
                continue
            self.metrics.engine_runs += 1
            if self.cache is not None:
                self.cache.put(key, outcome, disk_key)
            for pos, req in enumerate(reqs):
                status = "served" if pos == 0 else "coalesced"
                resp = self._terminal(req, status, batch_id, now)
                resp.result = outcome
                if status == "served":
                    self.metrics.served += 1
                else:
                    self.metrics.coalesced += 1
                responses[req.req_id] = resp
                verify_items.append((job, resp))

        if self.config.verify:
            for job, resp in verify_items:
                self._verify_one(job, resp)
        return responses

    def _fail(
        self, req: ServeRequest, batch_id: int, now: float, exc: Exception
    ) -> ServeResponse:
        resp = self._terminal(req, "failed", batch_id, now)
        resp.error = f"{type(exc).__name__}: {exc}"
        resp.exception = exc
        self.metrics.failed += 1
        return resp

    def _run_unique(self, engine: Engine, to_run: list) -> list:
        """Execute unique jobs; one outcome (result or exception) each."""
        if not to_run:
            return []
        if (
            self.config.backend == "process"
            and self.config.jobs > 1
            and len(to_run) > 1
        ):
            futures = [
                self._pool().submit(run_jobspec, reqs[0].job)
                for reqs, *_ in to_run
            ]
            outcomes: list = []
            for future in futures:
                try:
                    outcomes.append(future.result())
                except ReproError as exc:
                    outcomes.append(exc)
            return outcomes

        # in-process: group by dataset instance so the engine's batch entry
        # can amortize state across the configs of one dataset
        outcomes = [None] * len(to_run)
        by_data: "OrderedDict[int, list]" = OrderedDict()
        for i, (_reqs, _app, data, *_rest) in enumerate(to_run):
            by_data.setdefault(id(data), []).append(i)
        for idxs in by_data.values():
            _reqs0, app, data, *_rest = to_run[idxs[0]]
            configs = [to_run[i][0][0].job.config for i in idxs]
            try:
                results = engine.run_batch(app, data, configs)
                for i, result in zip(idxs, results):
                    outcomes[i] = result
            except ReproError:
                # one poisoned config sank the batch: retry one-by-one so
                # only the genuinely failing jobs fail
                for i in idxs:
                    try:
                        outcomes[i] = engine.run(app, data, to_run[i][0][0].job.config)
                    except ReproError as exc:
                        outcomes[i] = exc
        return outcomes

    # -------------------------------------------------------- verification
    def _verify_one(self, job: JobSpec, resp: ServeResponse) -> None:
        """Bit-compare a completed response against its one-shot oracle."""
        okey = (job.dataset, job.engine, job.config)
        oracle = self._oracles.get(okey)
        if oracle is None:
            oracle = self._oracles[okey] = oneshot_oracle(job)
        self.metrics.verified += 1
        ok = resp.result.sim_time == oracle.sim_time
        if job.config.functional:
            app = get_app(job.dataset.app)
            ok = ok and app.outputs_equal(resp.result.output, oracle.output)
        if not ok:
            self.metrics.verify_failures += 1
            resp.error = "served result diverges from its one-shot oracle"


@dataclass
class ServeOutcome:
    """Result of replaying one trace against one server."""

    responses: list
    metrics: ServeMetrics
    #: virtual seconds from trace start to the last completion
    makespan: float
    #: summed measured wall time of all dispatch rounds
    wall_seconds: float

    @property
    def jobs_per_sec(self) -> float:
        """Sustained completion throughput over the virtual makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.metrics.completed / self.makespan

    def summary(self) -> str:
        lines = [
            f"makespan={self.makespan:.3f}s wall={self.wall_seconds:.3f}s "
            f"throughput={self.jobs_per_sec:.2f} jobs/s",
            self.metrics.summary(),
        ]
        return "\n".join(lines)


def serve_trace(
    server: Server, requests: list, timer=time.perf_counter
) -> ServeOutcome:
    """Replay an open-loop trace on a virtual clock.

    The clock jumps forward to the next arrival whenever the server goes
    idle, and advances by the *measured* wall duration of every dispatch
    round. All arrivals at or before the current clock are admitted before
    each round, so overload (arrivals outpacing service) fills the queue
    and exercises admission control exactly as a live server would.  The
    server calibrates its pricer with the same ``timer``, so a replay
    with a deterministic timer makes every scheduling, shedding and
    admission decision reproducible.
    """
    server.timer = timer
    arrivals = sorted(requests, key=lambda r: (r.arrival, r.req_id))
    out: list = []
    clock = 0.0
    wall = 0.0
    i = 0
    n = len(arrivals)
    while i < n or server.pending():
        if not server.pending() and i < n:
            clock = max(clock, arrivals[i].arrival)
        while i < n and arrivals[i].arrival <= clock:
            rejection = server.submit(arrivals[i], now=clock)
            if rejection is not None:
                out.append(rejection)
            i += 1
        if not server.pending():
            continue
        start = timer()
        round_resps = server.dispatch_round(now=clock)
        elapsed = max(timer() - start, 0.0)
        wall += elapsed
        clock += elapsed
        server.finish(round_resps, clock)
        out.extend(round_resps)
    out.sort(key=lambda r: r.req_id)
    return ServeOutcome(
        responses=out, metrics=server.metrics, makespan=clock, wall_seconds=wall
    )
