"""Grouping a dispatch window into engine-compatible batches.

Two requests are *compatible* — may share one pipeline pass — when they
name the same engine (including its feature variant), the same app, and
the same hardware spec. Within a batch, requests that are *exact*
duplicates (same dataset recipe and same full config) collapse onto a
single engine run: the first becomes the batch leader, the rest become
followers that share the leader's result object.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.bench.jobs import JobSpec
from repro.serve.workload import ServeRequest


def batch_key(job: JobSpec) -> tuple:
    """Compatibility class of a job: (engine spec, app, hardware spec)."""
    return (job.engine, job.dataset.app, job.config.hardware)


def unique_key(job: JobSpec) -> tuple:
    """Exact-duplicate class of a job within a batch."""
    return (job.dataset, job.config)


@dataclass
class Batch:
    """One compatibility class worth of requests from a dispatch window."""

    key: tuple
    requests: list = field(default_factory=list)

    @property
    def engine_spec(self):
        return self.key[0]

    def unique_jobs(self) -> "OrderedDict[tuple, list[ServeRequest]]":
        """Requests grouped by exact-duplicate class, insertion-ordered.

        The first request of each group is the leader; followers coalesce
        onto its result.
        """
        groups: OrderedDict[tuple, list[ServeRequest]] = OrderedDict()
        for req in self.requests:
            groups.setdefault(unique_key(req.job), []).append(req)
        return groups


def coalesce(window: list[ServeRequest]) -> list[Batch]:
    """Split a dispatch window into compatibility batches, order-stable."""
    batches: OrderedDict[tuple, Batch] = OrderedDict()
    for req in window:
        key = batch_key(req.job)
        if key not in batches:
            batches[key] = Batch(key=key)
        batches[key].requests.append(req)
    return list(batches.values())
