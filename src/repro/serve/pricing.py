"""Online job pricing: analytic predictions calibrated by observed wall time.

The scheduler needs a *wall-clock* service-time estimate for every queued
job — that is what deadlines are written against.  The analytic predictor
(:func:`repro.analytic.predicted_sim_time`) supplies a cheap O(1) estimate
in *simulated* seconds for the engines it can model; the
:class:`JobPricer` closes the loop by learning, per (app, engine) cell, an
EWMA of the observed wall-per-simulated-second ratio from every executed
batch.  A priced job costs ``sim_time * ratio`` wall seconds.

Engines the predictor cannot price (the UVM family raises
:class:`~repro.errors.ReproError`) fall back to a per-cell EWMA of
observed wall time per engine run — pure measurement, no model.  Until a
cell has been observed at least once, :meth:`JobPricer.price` returns
``None`` and the scheduler stays conservative: no predictive rejection is
ever issued on an unpriced backlog.

A batch is exactly one compatibility cell (one engine spec, one app), so
one timed batch is one clean calibration sample for one cell.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.bench.jobs import JobSpec, engine_from_spec
from repro.errors import ReproError

#: EWMA smoothing for all calibration signals (recent rounds dominate)
EWMA_ALPHA = 0.3


def _ewma(old: Optional[float], sample: float) -> float:
    if old is None:
        return sample
    return (1.0 - EWMA_ALPHA) * old + EWMA_ALPHA * sample


class JobPricer:
    """Wall-clock service-time estimates for jobs, learned online."""

    def __init__(self):
        #: memoized analytic sim_time per job identity (None = unpredictable)
        self._sim: dict = {}
        #: EWMA wall/sim calibration ratio per (app, engine name) cell
        self._ratio: dict = {}
        #: EWMA observed wall per engine run per cell (UVM fallback path)
        self._per_run: dict = {}
        #: EWMA observed wall per engine run across *all* cells — the
        #: adaptive batcher sizes dispatch windows from this
        self.run_wall: Optional[float] = None
        self.stats = {
            "priced": 0,
            "modeled": 0,
            "observed": 0,
            "unpriced": 0,
            "samples": 0,
        }

    @staticmethod
    def cell(job: JobSpec) -> tuple:
        return (job.dataset.app, job.engine.name)

    # ----------------------------------------------------------- predictions
    def _sim_for(self, job: JobSpec, dataset_loader: Callable) -> Optional[float]:
        """Analytic sim_time of a job, memoized; None when unmodelable."""
        key = (job.dataset, job.engine, job.config)
        if key in self._sim:
            return self._sim[key]
        from repro.analytic import predicted_sim_time

        try:
            app, data = dataset_loader(job.dataset)
            sim = predicted_sim_time(
                app, data, job.config, engine_from_spec(job.engine)
            )
        except ReproError:
            sim = None
        self._sim[key] = sim
        return sim

    def price(self, job: JobSpec, dataset_loader: Callable) -> Optional[float]:
        """Predicted wall seconds to serve ``job`` solo, or ``None``.

        ``None`` means "no calibrated estimate yet" — the caller must not
        base rejections on it.  Model-priced cells need one observed batch
        to fix the wall/sim scale; unmodelable cells need one observed
        batch to seed the per-run EWMA.
        """
        self.stats["priced"] += 1
        cell = self.cell(job)
        sim = self._sim_for(job, dataset_loader)
        if sim is not None:
            ratio = self._ratio.get(cell)
            if ratio is not None:
                self.stats["modeled"] += 1
                return sim * ratio
        per_run = self._per_run.get(cell)
        if per_run is not None:
            self.stats["observed"] += 1
            return per_run
        self.stats["unpriced"] += 1
        return None

    # ----------------------------------------------------------- calibration
    def observe_batch(
        self,
        jobs: list,
        elapsed: float,
        n_runs: int,
        dataset_loader: Callable,
    ) -> None:
        """Fold one executed batch (``n_runs`` engine runs over ``jobs``
        unique jobs, ``elapsed`` wall seconds) into the calibration state."""
        if n_runs <= 0 or elapsed <= 0.0 or not jobs:
            return
        self.stats["samples"] += 1
        per_run = elapsed / n_runs
        self.run_wall = _ewma(self.run_wall, per_run)
        cell = self.cell(jobs[0])
        self._per_run[cell] = _ewma(self._per_run.get(cell), per_run)
        if n_runs == len(jobs):
            sims = [self._sim_for(job, dataset_loader) for job in jobs]
            if all(s is not None for s in sims) and sum(sims) > 0.0:
                self._ratio[cell] = _ewma(
                    self._ratio.get(cell), elapsed / sum(sims)
                )
