"""Seeded open-loop workload traces for the serving layer.

A trace is a list of :class:`ServeRequest`\\ s — (tenant, arrival time,
:class:`~repro.bench.jobs.JobSpec`) triples — drawn by a deterministic
generator: Poisson arrivals at a configured mean rate, tenants picked in
proportion to their weights, and jobs drawn from a small pool of (app,
dataset seed, engine, chunk size) combinations with a configurable
probability of *exactly* repeating an earlier job. Repeats are what make
the trace serving-shaped: a real multi-tenant service sees the same query
again and again, which is precisely what the run-cache short-circuit and
the batch coalescer exploit.

Open-loop means arrivals do not wait for completions: under overload the
queue grows and admission control — not the trace — decides what gets
dropped. The same spec + seed always produces the identical trace, so
every serving experiment is replayable; :func:`scale_trace` re-times one
trace to a different offered load without changing the job mix, which is
how the benchmark sweeps load levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.bench.jobs import DatasetSpec, EngineSpec, JobSpec
from repro.engines.base import EngineConfig
from repro.errors import ReproError
from repro.units import MiB


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the service: fair-share weight plus an optional SLO."""

    name: str
    weight: float = 1.0
    #: latency SLO in milliseconds: every request of this tenant carries the
    #: deadline ``arrival + slo_ms/1000`` on the serving clock. ``None``
    #: means best-effort (no deadline; never shed, never priced-rejected).
    slo_ms: Optional[float] = None

    def __post_init__(self):
        if not self.name:
            raise ReproError("tenant needs a name")
        if self.weight <= 0:
            raise ReproError(f"tenant {self.name!r} needs a positive weight")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ReproError(f"tenant {self.name!r} needs a positive slo_ms")

    @property
    def slo_seconds(self) -> float:
        """The SLO as seconds on the serving clock (``inf`` = best-effort)."""
        return math.inf if self.slo_ms is None else self.slo_ms / 1000.0


#: the stock three-tenant mix used by the CLI and the benchmarks
DEFAULT_TENANTS = (
    TenantSpec("alpha", 1.0),
    TenantSpec("beta", 2.0),
    TenantSpec("gamma", 4.0),
)


def with_slo(tenants: tuple, slo_ms: Optional[float]) -> tuple:
    """The same tenant mix with every tenant's SLO set to ``slo_ms``."""
    return tuple(replace(t, slo_ms=slo_ms) for t in tenants)


@dataclass
class ServeRequest:
    """One admitted-or-rejected unit of work: a job on behalf of a tenant."""

    req_id: int
    tenant: str
    #: seconds since trace start (open-loop: fixed by the generator)
    arrival: float
    job: JobSpec


@dataclass(frozen=True)
class TraceSpec:
    """Everything the trace generator draws from (all seeded)."""

    seed: int = 7
    #: seconds of arrivals to generate
    duration: float = 5.0
    #: mean arrival rate (requests/second, Poisson)
    rate: float = 20.0
    tenants: tuple = DEFAULT_TENANTS
    #: registry apps the job pool draws from
    apps: tuple = ("wordcount", "dna")
    #: stock engine names the job pool draws from. The default mix pairs
    #: the paper engine with the unified-memory competitor so the serving
    #: path exercises an engine family the analytic predictor cannot price
    #: (UVM jobs are costed purely from the observed-wall calibration loop)
    engines: tuple = ("bigkernel", "gpu_uvm")
    #: mapped bytes per generated dataset
    data_bytes: int = 1 * MiB
    #: distinct dataset seeds per app (pool size drives cache locality)
    n_dataset_seeds: int = 2
    #: chunk payload choices (KiB) the job pool draws from
    chunk_kib_choices: tuple = (512, 1024)
    #: probability a request exactly repeats an earlier job (cache food)
    repeat_p: float = 0.5

    def __post_init__(self):
        if self.duration <= 0 or self.rate <= 0:
            raise ReproError("trace needs positive duration and rate")
        if not self.tenants or not self.apps or not self.engines:
            raise ReproError("trace needs at least one tenant, app and engine")
        if not 0.0 <= self.repeat_p < 1.0:
            raise ReproError("repeat_p must be in [0, 1)")
        if self.n_dataset_seeds < 1 or not self.chunk_kib_choices:
            raise ReproError("trace needs a non-empty job pool")


def engine_spec_by_name(name: str) -> EngineSpec:
    """Picklable spec of a stock engine, resolved from the registry."""
    from repro.bench.jobs import engine_to_spec
    from repro.engines import ALL_ENGINES, UVM_ENGINES

    for cls in tuple(ALL_ENGINES) + tuple(UVM_ENGINES):
        if cls.name == name:
            spec = engine_to_spec(cls())
            assert spec is not None  # stock engines are always spec-able
            return spec
    raise ReproError(f"unknown engine {name!r} for the serve trace")


def generate_trace(
    spec: TraceSpec, config: Optional[EngineConfig] = None
) -> list[ServeRequest]:
    """Draw the full request trace for ``spec`` (deterministic in seed)."""
    from repro.apps.base import APP_REGISTRY
    from repro.apps.datagen import DATAGEN_VERSION

    for app in spec.apps:
        if app not in APP_REGISTRY:
            raise ReproError(f"unknown app {app!r} for the serve trace")
    engine_specs = [engine_spec_by_name(name) for name in spec.engines]
    base = config or EngineConfig(functional=True)

    rng = np.random.default_rng(spec.seed)
    weights = np.array([t.weight for t in spec.tenants], dtype=float)
    weights /= weights.sum()
    names = [t.name for t in spec.tenants]

    requests: list[ServeRequest] = []
    history: list[JobSpec] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / spec.rate))
        if t > spec.duration:
            break
        tenant = names[int(rng.choice(len(names), p=weights))]
        if history and float(rng.random()) < spec.repeat_p:
            job = history[int(rng.integers(len(history)))]
        else:
            job = JobSpec(
                dataset=DatasetSpec(
                    app=str(rng.choice(spec.apps)),
                    seed=int(rng.integers(spec.n_dataset_seeds)),
                    n_bytes=spec.data_bytes,
                    version=DATAGEN_VERSION,
                ),
                engine=engine_specs[int(rng.integers(len(engine_specs)))],
                config=base.with_(
                    chunk_bytes=int(rng.choice(spec.chunk_kib_choices)) * 1024
                ),
            )
        history.append(job)
        requests.append(
            ServeRequest(req_id=len(requests), tenant=tenant, arrival=t, job=job)
        )
    return requests


def scale_trace(requests: list[ServeRequest], factor: float) -> list[ServeRequest]:
    """Re-time a trace by ``factor`` (>1 = slower arrivals, <1 = faster).

    The job sequence, tenants and request ids are untouched — only the
    offered load changes, which is what lets the benchmark compare load
    levels on the *same* work.
    """
    if factor <= 0:
        raise ReproError("scale factor must be positive")
    return [replace(r, arrival=r.arrival * factor) for r in requests]
