#!/usr/bin/env python3
"""Merchant affinity over variable-length transaction records.

The hardest case for GPU streaming: delimiter-separated variable-length
records force the kernel to scan every byte to even find record boundaries,
so the transfer volume cannot be reduced — until an index file exposes the
key fields, unlocking a ~4x volume reduction (the paper's indexed variant,
its biggest single win).

Runs both variants through BigKernel and the baselines and contrasts them.
"""

from repro.apps import MastercardAffinityApp, MastercardIndexedApp
from repro.engines import (
    BigKernelEngine,
    CpuMtEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
)
from repro.units import MiB, fmt_bytes, fmt_time

import numpy as np


def run_variant(app, label):
    data = app.generate(n_bytes=16 * MiB, seed=13)
    config = EngineConfig(chunk_bytes=2 * MiB)
    engines = {
        "CPU MT": CpuMtEngine(),
        "single": GpuSingleBufferEngine(),
        "double": GpuDoubleBufferEngine(),
        "BigKernel": BigKernelEngine(),
    }
    results = {name: e.run(app, data, config) for name, e in engines.items()}
    outputs = [r.output for r in results.values()]
    for out in outputs[1:]:
        assert app.outputs_equal(outputs[0], out)

    bk = results["BigKernel"]
    top = np.argsort(bk.output)[::-1][:3]
    print(f"\n== {label} ==")
    print(f"target merchant {data.params['target']}: "
          f"top co-visited merchants {top.tolist()} "
          f"({bk.output[top].tolist()} visits)")
    for name, r in results.items():
        print(f"  {name:10s} {fmt_time(r.sim_time):>12s}   "
              f"h2d {fmt_bytes(r.metrics.bytes_h2d):>12s}")
    print(f"  pattern: {'recognized' if bk.metrics.notes['pattern_on'] else 'none (NA)'}; "
          f"2 passes over the mapped data")
    return results


def main() -> None:
    plain = run_variant(MastercardAffinityApp(), "MasterCard Affinity (byte scan)")
    indexed = run_variant(MastercardIndexedApp(), "MasterCard Affinity (indexed)")

    bk_plain = plain["BigKernel"]
    bk_idx = indexed["BigKernel"]
    print(f"\nindex effect on BigKernel: "
          f"{bk_plain.sim_time / bk_idx.sim_time:.2f}x faster, "
          f"transfers {fmt_bytes(bk_plain.metrics.bytes_h2d)} -> "
          f"{fmt_bytes(bk_idx.metrics.bytes_h2d)}")


if __name__ == "__main__":
    main()
