#!/usr/bin/env python3
"""Extensions showcase: multi-GPU sharding and the unified-memory epilogue.

Part 1 shards the Netflix stream across 1/2/4 simulated GPUs (dedicated
links vs one shared link) — the paper's per-block pipeline design extends
to multiple devices with no new machinery.

Part 2 adds the historical epilogue: a fault-driven unified-memory
executor gets BigKernel's programming model from the driver and roughly
double-buffering performance with zero buffer code — which is why this
line of work was eventually absorbed by UVM — while BigKernel's explicit
prefetch pipeline still wins the streaming workloads it was built for.
"""

from repro.apps import KMeansApp, NetflixApp
from repro.bench.report import render_table
from repro.engines import (
    BigKernelEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
)
from repro.ext import GpuUvmEngine, MultiGpuBigKernelEngine
from repro.units import MiB, fmt_time


def part1_multigpu() -> None:
    app = NetflixApp()
    data = app.generate(n_bytes=32 * MiB, seed=9)
    cfg = EngineConfig(chunk_bytes=2 * MiB)
    base = BigKernelEngine().run(app, data, cfg)
    rows = [["1", fmt_time(base.sim_time), "1.00x", "-"]]
    for n in (2, 4):
        dedicated = MultiGpuBigKernelEngine(n).run(app, data, cfg)
        shared = MultiGpuBigKernelEngine(n, shared_link=True).run(app, data, cfg)
        assert app.outputs_equal(base.output, dedicated.output)
        rows.append(
            [
                str(n),
                fmt_time(dedicated.sim_time),
                f"{base.sim_time / dedicated.sim_time:.2f}x",
                f"{base.sim_time / shared.sim_time:.2f}x",
            ]
        )
    print(render_table(
        ["GPUs", "time", "scaling (dedicated links)", "scaling (shared link)"],
        rows,
        title="Part 1 — multi-GPU BigKernel on Netflix (32 MiB)",
    ))
    print("Scaling flattens as the host's 8 assembly threads are divided\n"
          "among devices — BigKernel's CPU-resource appetite, multiplied.\n")


def part2_uvm() -> None:
    app = KMeansApp()
    data = app.generate(n_bytes=32 * MiB, seed=9)
    cfg = EngineConfig(chunk_bytes=2 * MiB)
    engines = [
        GpuSingleBufferEngine(),
        GpuDoubleBufferEngine(),
        GpuUvmEngine(),
        BigKernelEngine(),
    ]
    rows = []
    results = [e.run(app, data, cfg) for e in engines]
    for r in results:
        code = {
            "gpu_single": "chunk loop + buffers",
            "gpu_double": "chunk loop + 2x buffers + events",
            "gpu_uvm": "none (driver-managed)",
            "bigkernel": "none (compiler-managed)",
        }[r.engine]
        rows.append([r.engine, fmt_time(r.sim_time), code])
    print(render_table(
        ["scheme", "time", "buffer code the programmer writes"],
        rows,
        title="Part 2 — the programmability/performance frontier (K-means)",
    ))
    print("\nUVM delivers BigKernel's zero-buffer programming model at\n"
          "~double-buffering speed — the reason fault-driven migration\n"
          "eventually absorbed this problem — while BigKernel's explicit\n"
          "pipeline remains ahead on streaming workloads.")


if __name__ == "__main__":
    part1_multigpu()
    part2_uvm()
