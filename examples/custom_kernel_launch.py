#!/usr/bin/env python3
"""Write your own kernel, launch it — the paper's programming model live.

Defines a sensor-anomaly kernel that the packaged applications have never
seen (read two of five fields per record, flag out-of-band readings into a
resident histogram), maps a synthetic 8 MiB sensor log, and launches it.
The front end compiles the address slice, measures the access profile from
the kernel itself, recognizes the stride pattern online, and runs the full
4-stage pipeline — no Application subclass, no buffer code.
"""

import numpy as np

from repro.engines import EngineConfig
from repro.kernelc import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    Var,
    loc_count,
    make_addrgen_kernel,
    render_kernel,
)
from repro.runtime import LaunchSpec, StreamingRegistry, bigkernel_launch
from repro.units import MiB, fmt_bytes, fmt_time

READING = RecordSchema.packed(
    [
        ("sensor", "i4"),
        ("temperature", "f8"),
        ("pressure", "f8"),
        ("checksum", "i8"),
        ("sequence", "i8"),
    ],
    record_size=40,
)

N_SENSORS = 256
TEMP_LIMIT = 90.0


def anomaly_kernel() -> Kernel:
    ref = lambda f: MappedRef("readings", Var("i"), f)
    return Kernel(
        "anomalyKernel",
        (
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("s", Load(ref("sensor"))),
                    Assign("t", Load(ref("temperature"))),
                    If(
                        BinOp(">", Var("t"), Const(TEMP_LIMIT)),
                        (AtomicAdd("anomalies", Var("s"), Const(1)),),
                    ),
                ),
            ),
        ),
        mapped={"readings": READING},
        resident=("anomalies",),
    )


def main() -> None:
    rng = np.random.default_rng(123)
    n = (8 * MiB) // READING.record_size
    readings = np.zeros(n, dtype=READING.numpy_dtype())
    readings["sensor"] = rng.integers(0, N_SENSORS, n)
    # a few sensors run hot
    hot = rng.choice(N_SENSORS, 8, replace=False)
    base = np.where(np.isin(readings["sensor"], hot), 85.0, 60.0)
    readings["temperature"] = base + rng.normal(0, 8.0, n)
    readings["pressure"] = rng.normal(101.3, 2.0, n)

    kernel = anomaly_kernel()
    print(f"user kernel ({loc_count(kernel)} LOC):\n")
    print(render_kernel(kernel))
    print(f"\naddress slice ({loc_count(make_addrgen_kernel(kernel))} LOC) "
          "derived automatically.\n")

    registry = StreamingRegistry()
    registry.streaming_malloc("readings", readings.nbytes)
    registry.streaming_map("readings", readings, READING)

    result = bigkernel_launch(
        kernel,
        registry,
        resident={"anomalies": np.zeros(N_SENSORS, dtype=np.int64)},
        config=EngineConfig(chunk_bytes=1 * MiB),
        spec=LaunchSpec(make_output=lambda ctx: ctx.resident["anomalies"].copy()),
    )

    expected_hot = set(hot.tolist())
    found = set(np.argsort(result.output)[::-1][:8].tolist())
    print(f"mapped {fmt_bytes(readings.nbytes)}; kernel reads sensor+temperature "
          f"(12 of 40 B per record)")
    print(f"transferred {fmt_bytes(result.metrics.bytes_h2d)} "
          f"(volume reduction from the address slice)")
    print(f"pattern recognized on {result.metrics.pattern_fraction:.0%} of "
          f"sampled threads; simulated time {fmt_time(result.sim_time)}")
    print(f"hot sensors found: {sorted(found)}")
    print(f"hot sensors planted: {sorted(expected_hot)}")
    assert found == expected_hot
    print("\nanomaly detection matches the planted ground truth.")


if __name__ == "__main__":
    main()
