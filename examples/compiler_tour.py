#!/usr/bin/env python3
"""Tour of the BigKernel compiler transformations.

Takes the paper's K-means kernel through both transformations and prints
the three forms as pseudo-CUDA — the original, the address-generation
slice (stage 1), and the dataBuf computation kernel (stage 4) — then runs
the full round trip on real data to show the transformed pipeline computes
the same answer. Finishes with the fallback case: a pointer-chasing kernel
the slicer must reject.
"""

import numpy as np

from repro.apps import KMeansApp
from repro.errors import SlicingError
from repro.kernelc import (
    Assign,
    BinOp,
    Const,
    Kernel,
    KernelInterpreter,
    Load,
    MappedRef,
    RecordSchema,
    Var,
    While,
    loc_count,
    make_addrgen_kernel,
    make_databuf_kernel,
    render_kernel,
)
from repro.runtime.assembly import gather_values


def main() -> None:
    app = KMeansApp()
    kernel = app.kernel()

    addrgen = make_addrgen_kernel(kernel)
    databuf = make_databuf_kernel(kernel)

    for label, k in (
        ("ORIGINAL (written by the programmer)", kernel),
        ("ADDRESS-GENERATION SLICE (pipeline stage 1)", addrgen),
        ("DATA-BUFFER COMPUTATION KERNEL (pipeline stage 4)", databuf),
    ):
        print(f"--- {label} [{loc_count(k)} LOC] " + "-" * 20)
        print(render_kernel(k))
        print()

    # Run the round trip on real particles.
    data = app.generate(n_bytes=48 * 64, seed=5)
    expected = app.reference(data)

    data2 = app.generate(n_bytes=48 * 64, seed=5)
    ctx = app.make_ir_context(data2)
    ag = KernelInterpreter(addrgen, ctx)
    ag.run_thread(tid=0, start=0, end=64)
    print(f"addr-gen emitted {len(ag.read_addresses)} read addresses "
          f"+ {len(ag.write_addresses)} write addresses")

    values = gather_values(
        data2.mapped["particles"].view(np.uint8).reshape(-1), ag.read_addresses
    )
    db = KernelInterpreter(databuf, ctx)
    db.load_data(values)
    db.run_thread(tid=0, start=0, end=64)
    for rec, value in zip(ag.write_addresses, (v for _, v in db.write_queue)):
        view = data2.mapped["particles"].view(np.uint8).reshape(-1)
        view[rec.offset : rec.offset + rec.nbytes] = np.asarray(
            [value], dtype=rec.dtype
        ).view(np.uint8)
    assert np.array_equal(expected, app.ir_output(data2, ctx))
    print("round trip output == original kernel output\n")

    # The case the paper's transformation cannot handle.
    LINKS = RecordSchema.packed([("next", "i8")])
    chase = Kernel(
        "pointerChase",
        (
            Assign("i", Var("start")),
            Assign("n", Const(0)),
            While(
                BinOp("<", Var("n"), Const(10)),
                (
                    Assign("i", Load(MappedRef("links", Var("i"), "next"))),
                    Assign("n", BinOp("+", Var("n"), Const(1))),
                ),
            ),
        ),
        mapped={"links": LINKS},
    )
    try:
        make_addrgen_kernel(chase)
    except SlicingError as e:
        print(f"pointer-chasing kernel correctly rejected:\n  SlicingError: {e}")
        print("  -> BigKernel falls back to transferring all data for it "
              "(double-buffering-equivalent).")


if __name__ == "__main__":
    main()
