#!/usr/bin/env python3
"""Quickstart: the paper's K-means example, end to end.

Runs the paper's running example through the streaming programming model
(``streamingMalloc``/``streamingMap``), executes all five evaluation schemes
over the same dataset, verifies they produce identical cluster assignments,
and prints the Fig. 4(a)-style speedup column for K-means.

Usage::

    python examples/quickstart.py [data_mib]
"""

import sys

from repro.apps import KMeansApp
from repro.engines import (
    BigKernelEngine,
    CpuMtEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
)
from repro.runtime.streaming import StreamingRegistry
from repro.units import MiB, fmt_bytes, fmt_time


def main() -> None:
    data_mib = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    app = KMeansApp()
    data = app.generate(n_bytes=data_mib * MiB, seed=42)
    print(f"K-means: {data.n_records} particles, {fmt_bytes(data.total_mapped_bytes)} mapped")

    # The programming model from the paper's Section III-A: declare the
    # pseudo-virtual device array and map the host data to it. BigKernel
    # handles chunking, buffering, transfers, and layout behind this.
    registry = StreamingRegistry()
    registry.streaming_malloc("d_particles", data.total_mapped_bytes)
    particles = registry.streaming_map(
        "d_particles",
        data.mapped["particles"],
        data.schemas["particles"],
        writable=True,  # the kernel writes cluster ids back
    )
    print(f"mapped streaming array: {particles.name} "
          f"({particles.n_records} records x {particles.schema.record_size} B)")

    config = EngineConfig(chunk_bytes=2 * MiB)
    engines = [
        CpuSerialEngine(),
        CpuMtEngine(),
        GpuSingleBufferEngine(),
        GpuDoubleBufferEngine(),
        BigKernelEngine(),
    ]
    results = {e.display_name: e.run(app, data, config) for e in engines}

    baseline = results["CPU Serial"]
    for r in results.values():
        assert app.outputs_equal(baseline.output, r.output), r.engine
    print("\nall five schemes produce identical cluster assignments\n")

    print(f"{'scheme':24s} {'sim time':>12s} {'speedup':>9s}")
    for name, r in results.items():
        print(f"{name:24s} {fmt_time(r.sim_time):>12s} {r.speedup_over(baseline):>8.2f}x")

    bk = results["GPU BigKernel"]
    print(f"\nBigKernel details: {bk.metrics.n_chunks} pipeline chunks, "
          f"pattern recognized on {bk.metrics.pattern_fraction:.0%} of sampled threads,")
    print(f"  h2d {fmt_bytes(bk.metrics.bytes_h2d)} (volume reduced from "
          f"{fmt_bytes(results['GPU Single Buffer'].metrics.bytes_h2d)}), "
          f"d2h {fmt_bytes(bk.metrics.bytes_d2h)} (write-back)")


if __name__ == "__main__":
    main()
