#!/usr/bin/env python3
"""What-if study: how interconnect bandwidth shifts the pipeline bottleneck.

The paper concludes that BigKernel "largely removed PCIe from being a
bottleneck ... with the bottleneck migrating to the GPU cores". This study
sweeps the link bandwidth from half of PCIe Gen3 up to Gen4/Gen5-class
links and watches BigKernel's own slowest stage migrate from the data
transfer to the computation stage.

It also contrasts double-buffering: its bottleneck is the *CPU staging
memcpy*, which a faster link does nothing for — one more reason prefetch
pipelining with parallel assembly ages better than classic double
buffering as interconnects improve.
"""

from dataclasses import replace

from repro.apps import KMeansApp, NetflixApp
from repro.bench.report import render_table
from repro.engines import BigKernelEngine, EngineConfig, GpuDoubleBufferEngine
from repro.hw.spec import DEFAULT_HARDWARE
from repro.runtime.pipeline import FORWARD_STAGES
from repro.units import GB, MiB


def sweep(app, factors):
    data = app.generate(n_bytes=16 * MiB, seed=3)
    rows = []
    for f in factors:
        pcie = replace(
            DEFAULT_HARDWARE.pcie,
            raw_bandwidth=DEFAULT_HARDWARE.pcie.raw_bandwidth * f,
        )
        hw = replace(DEFAULT_HARDWARE, pcie=pcie)
        cfg = EngineConfig(hardware=hw, chunk_bytes=2 * MiB)
        bk = BigKernelEngine().run(app, data, cfg)
        db = GpuDoubleBufferEngine().run(app, data, cfg)
        assert app.outputs_equal(bk.output, db.output)
        totals = bk.metrics.stage_totals
        slowest = max(FORWARD_STAGES, key=lambda s: totals.get(s, 0.0))
        xfer_share = totals.get("data_transfer", 0.0) / max(
            totals[s] for s in FORWARD_STAGES
        )
        rows.append(
            [
                f"{pcie.raw_bandwidth / GB:.1f} GB/s",
                f"{db.sim_time * 1e3:.2f} ms",
                f"{bk.sim_time * 1e3:.2f} ms",
                slowest,
                f"{xfer_share * 100:.0f}%",
            ]
        )
    return rows


def main() -> None:
    factors = (0.5, 1.0, 2.0, 4.0, 8.0)
    for app in (KMeansApp(), NetflixApp()):
        rows = sweep(app, factors)
        print(render_table(
            ["link bandwidth", "double-buffer", "BigKernel",
             "BK slowest stage", "transfer vs slowest"],
            rows,
            title=f"\n{app.display_name}: bottleneck migration vs link speed",
        ))
    print(
        "\nTwo effects, both from the paper's conclusion:\n"
        "  1. BigKernel's slowest stage migrates from data transfer to the\n"
        "     GPU computation stage as the link speeds up — PCIe stops being\n"
        "     the bottleneck.\n"
        "  2. Double-buffering barely improves: its bottleneck is the CPU\n"
        "     staging memcpy, which a faster link does not touch."
    )


if __name__ == "__main__":
    main()
