#!/usr/bin/env python3
"""Big-Data-style log analytics: Word Count over a mapped document.

Demonstrates the byte-stream case that motivates pattern recognition: the
kernel reads every byte (Table I: 100% read), so shipping one 8-byte
address per 1-byte character would be absurd — the online recognizer
compresses each thread's stride-1 walk into a single descriptor.

Prints the per-stage pipeline breakdown (Fig. 6 style) and the
pattern-recognition benefit (Table II style) for this workload.
"""

from repro.apps import WordCountApp
from repro.bench.report import render_series
from repro.engines import BigKernelEngine, EngineConfig, GpuDoubleBufferEngine
from repro.runtime.pipeline import FORWARD_STAGES
from repro.units import MiB, fmt_bytes, fmt_time


def main() -> None:
    app = WordCountApp()
    data = app.generate(n_bytes=16 * MiB, seed=7)
    print(f"document: {fmt_bytes(data.total_mapped_bytes)}, "
          f"~{data.meta['n_words']} words "
          f"(avg record {data.meta['avg_record']:.1f} B)")

    config = EngineConfig(chunk_bytes=2 * MiB)
    engine = BigKernelEngine()

    with_pattern = engine.run(app, data, config)
    without = engine.run(app, data, config.with_(pattern_recognition=False))
    double = GpuDoubleBufferEngine().run(app, data, config)
    assert app.outputs_equal(with_pattern.output, without.output)
    assert app.outputs_equal(with_pattern.output, double.output)

    top = with_pattern.output.max()
    print(f"word-count table: {int((with_pattern.output > 0).sum())} occupied "
          f"buckets, hottest bucket {int(top)} hits\n")

    print("BigKernel pipeline stage totals (relative to the longest):")
    totals = with_pattern.metrics.stage_totals
    longest = max(totals[s] for s in FORWARD_STAGES)
    series = {s: totals[s] / longest for s in FORWARD_STAGES}
    print(render_series(series, unit=""))

    print(f"\npattern recognition:")
    print(f"  with patterns    {fmt_time(with_pattern.sim_time)}")
    print(f"  raw addresses    {fmt_time(without.sim_time)} "
          f"(+{(without.sim_time / with_pattern.sim_time - 1) * 100:.0f}% — Table II)")
    print(f"  double-buffering {fmt_time(double.sim_time)}")
    print(f"\nnote: Word Count is computation-dominant (centralized hash table"
          f"\n+ per-byte divergence), so BigKernel's gain over double-buffering"
          f"\nis modest here ({double.sim_time / with_pattern.sim_time:.2f}x) — "
          f"exactly the paper's observation.")


if __name__ == "__main__":
    main()
