#!/usr/bin/env python3
"""MapReduce on BigKernel — the paper's future-work direction, realized.

Declares a MapReduce job (URL hit counting over a zipf clickstream) and a
second job (max latency per URL) and runs both on every execution scheme.
The mapper reads only the fields it needs, so BigKernel's prefetcher moves
~12.5% of the data for the counting job.
"""

import numpy as np

from repro.engines import (
    BigKernelEngine,
    CpuMtEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
)
from repro.ext.mapreduce import CLICK, MapReduceApp, MapReduceSpec, N_URLS, make_clickstream_job
from repro.ext import mapreduce as mr
from repro.units import MiB, fmt_bytes, fmt_time


def run_job(app, label):
    data = app.generate(n_bytes=16 * MiB, seed=11)
    cfg = EngineConfig(chunk_bytes=2 * MiB)
    engines = [
        CpuSerialEngine(),
        CpuMtEngine(),
        GpuSingleBufferEngine(),
        GpuDoubleBufferEngine(),
        BigKernelEngine(),
    ]
    results = [e.run(app, data, cfg) for e in engines]
    for r in results[1:]:
        assert app.outputs_equal(results[0].output, r.output), r.engine
    print(f"\n== {label}: {app.n_units(data)} records, "
          f"{fmt_bytes(data.total_mapped_bytes)} mapped ==")
    base = results[0].sim_time
    for r in results:
        print(f"  {r.engine:12s} {fmt_time(r.sim_time):>12s} "
              f"({base / r.sim_time:5.2f}x)   h2d {fmt_bytes(r.metrics.bytes_h2d)}")
    return results[-1]


def main() -> None:
    # Job 1: hit count per URL (reads 4 of 32 bytes per record).
    counter = make_clickstream_job("count")
    bk = run_job(counter, "MapReduce job: URL hit count")
    out = bk.output
    hot = np.argsort(out)[::-1][:3]
    print(f"  hottest URLs: {hot.tolist()} with {out[hot].astype(int).tolist()} hits")

    # Job 2: max latency per URL (reads url + latency_ms, non-contiguous).
    spec = MapReduceSpec(
        name="latency_p100",
        schema=CLICK,
        read_fields=("url", "latency_ms"),
        mapper=lambda batch, params: (
            batch["url"].astype(np.int64),
            batch["latency_ms"].astype(np.float64),
        ),
        reducer="max",
        n_keys=N_URLS,
        generator=mr._click_generator,
        map_ops_per_record=40.0,
    )
    bk2 = run_job(MapReduceApp(spec), "MapReduce job: max latency per URL")
    worst = int(np.nanargmax(np.where(np.isfinite(bk2.output), bk2.output, -1)))
    print(f"  slowest URL: {worst} at {bk2.output[worst]:.1f} ms")


if __name__ == "__main__":
    main()
